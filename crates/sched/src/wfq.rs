//! Weighted Fair Queueing via the start-time fair queueing virtual clock.

use std::collections::VecDeque;

use crate::{QueueState, Scheduler};

/// WFQ: each packet gets a virtual *start tag*
/// `S = max(v, F_queue)` and *finish tag* `F = S + len / weight` at
/// enqueue; the scheduler always transmits the packet with the smallest
/// start tag and advances the virtual clock `v` to it (Start-time Fair
/// Queueing, Goyal et al. — the standard practical WFQ realization).
///
/// WFQ has **no round concept** ([`Scheduler::round_time_nanos`] is
/// `None`), which is exactly why MQ-ECN cannot run on it while PMSB and
/// TCN can (Table I, and the paper's Figs. 22–27 exclude MQ-ECN under
/// WFQ).
///
/// # Example
///
/// ```
/// use pmsb_sched::{Scheduler, Wfq};
///
/// let w = Wfq::new(vec![1, 1]);
/// assert_eq!(w.round_time_nanos(), None); // not round-based
/// ```
#[derive(Debug)]
pub struct Wfq {
    weights: Vec<u64>,
    /// Per-queue FIFO of start tags, parallel to the MultiQueue contents.
    start_tags: Vec<VecDeque<f64>>,
    /// Finish tag of the most recently enqueued packet, per queue.
    last_finish: Vec<f64>,
    vtime: f64,
}

impl Wfq {
    /// Creates the policy with per-queue weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is zero.
    pub fn new(weights: Vec<u64>) -> Self {
        assert!(
            !weights.is_empty() && weights.iter().all(|w| *w > 0),
            "WFQ weights must be positive"
        );
        let n = weights.len();
        Wfq {
            weights,
            start_tags: (0..n).map(|_| VecDeque::new()).collect(),
            last_finish: vec![0.0; n],
            vtime: 0.0,
        }
    }

    /// The current virtual time (for tests/diagnostics).
    pub fn vtime(&self) -> f64 {
        self.vtime
    }
}

impl Scheduler for Wfq {
    fn num_queues(&self) -> usize {
        self.weights.len()
    }

    fn on_enqueue(&mut self, q: usize, bytes: u64, _now_nanos: u64) {
        let start = self.vtime.max(self.last_finish[q]);
        let finish = start + bytes as f64 / self.weights[q] as f64;
        self.start_tags[q].push_back(start);
        self.last_finish[q] = finish;
    }

    fn select(&mut self, state: &QueueState<'_>, _now_nanos: u64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for q in 0..self.weights.len() {
            if !state.is_active(q) {
                continue;
            }
            let s = *self.start_tags[q]
                .front()
                .expect("tag queue out of sync with packet queue");
            match best {
                Some((_, bs)) if bs <= s => {}
                _ => best = Some((q, s)),
            }
        }
        if let Some((q, s)) = best {
            self.vtime = self.vtime.max(s);
            Some(q)
        } else {
            None
        }
    }

    fn on_dequeue(&mut self, q: usize, _bytes: u64, _now_nanos: u64) {
        self.start_tags[q]
            .pop_front()
            .expect("dequeue from queue with no tags");
    }

    fn weights(&self) -> Vec<u64> {
        self.weights.clone()
    }

    fn name(&self) -> &'static str {
        "wfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{served_under_backlog, B};
    use crate::MultiQueue;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn equal_weights_alternate() {
        let mut mq = MultiQueue::new(Box::new(Wfq::new(vec![1, 1])), u64::MAX);
        for _ in 0..4 {
            mq.enqueue(0, B(1000), 0).unwrap();
            mq.enqueue(1, B(1000), 0).unwrap();
        }
        let mut served = [0u64; 2];
        for t in 0..8 {
            served[mq.dequeue(t).unwrap().0] += 1000;
        }
        assert_eq!(served[0], served[1]);
    }

    #[test]
    fn work_conserving_when_one_queue_idle() {
        let mut mq = MultiQueue::new(Box::new(Wfq::new(vec![1, 1])), u64::MAX);
        for _ in 0..5 {
            mq.enqueue(1, B(500), 0).unwrap();
        }
        for t in 0..5 {
            assert_eq!(mq.dequeue(t).unwrap().0, 1);
        }
    }

    #[test]
    fn newly_active_queue_not_starved_and_not_overcompensated() {
        // Queue 1 transmits alone for a while; when queue 0 wakes up it
        // must get its fair share going forward, not claim "missed" service
        // retroactively.
        let mut mq = MultiQueue::new(Box::new(Wfq::new(vec![1, 1])), u64::MAX);
        let mut now = 0;
        for _ in 0..50 {
            mq.enqueue(1, B(1000), now).unwrap();
        }
        for _ in 0..40 {
            let (q, item) = mq.dequeue(now).unwrap();
            assert_eq!(q, 1);
            now += item.0;
        }
        // Queue 0 becomes active.
        for _ in 0..20 {
            mq.enqueue(0, B(1000), now).unwrap();
        }
        let mut served = [0u64; 2];
        for _ in 0..20 {
            let (q, item) = mq.dequeue(now).unwrap();
            served[q] += item.0;
            now += item.0;
        }
        // Fair from-now-on: close to a 10/10 split (tie-breaks may hand the
        // waking queue up to two extra packets).
        assert!((served[0] as i64 - served[1] as i64).abs() <= 2000);
    }

    #[test]
    fn byte_fair_with_mixed_packet_sizes() {
        let mut mq = MultiQueue::new(Box::new(Wfq::new(vec![1, 1])), u64::MAX);
        let mut now = 0u64;
        for _ in 0..500 {
            mq.enqueue(0, B(300), now).unwrap();
        }
        for _ in 0..100 {
            mq.enqueue(1, B(1500), now).unwrap();
        }
        let mut served = [0u64; 2];
        for _ in 0..400 {
            let Some((q, item)) = mq.dequeue(now) else {
                break;
            };
            served[q] += item.0;
            now += item.0;
            let _ = mq.enqueue(q, item, now);
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "byte ratio {ratio}");
    }

    /// Under permanent backlog, byte service is proportional to weight,
    /// for seeded-random weight vectors.
    #[test]
    fn proportional_service() {
        let mut rng = SimRng::seed_from(0x3f9);
        for _ in 0..32 {
            let n = 2 + rng.below(3);
            let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(7) as u64).collect();
            let served = served_under_backlog(Box::new(Wfq::new(weights.clone())), 1500, 6000);
            let total: u64 = served.iter().sum();
            let wsum: u64 = weights.iter().sum();
            for (q, w) in weights.iter().enumerate() {
                let got = served[q] as f64 / total as f64;
                let want = *w as f64 / wsum as f64;
                assert!((got - want).abs() < 0.05, "queue {q}: {got} vs {want}");
            }
        }
    }
}
