//! Weighted Round Robin (packet-granularity).

use crate::{QueueState, RoundTimeEstimator, Scheduler};

/// WRR: queues are visited round-robin; each visit lets queue `i` send up
/// to `weight_i` *packets*. Simpler than DWRR but only weight-fair when
/// packet sizes are uniform.
///
/// Round-based: exposes a smoothed `T_round` for MQ-ECN, like
/// [`Dwrr`](crate::Dwrr).
///
/// # Example
///
/// ```
/// use pmsb_sched::{Scheduler, Wrr};
///
/// let w = Wrr::new(vec![2, 1]);
/// assert_eq!(w.weights(), vec![2, 1]);
/// assert!(w.round_time_nanos().is_some());
/// ```
#[derive(Debug)]
pub struct Wrr {
    weights: Vec<u64>,
    credits: Vec<u64>,
    credited: Vec<bool>,
    backlog_items: Vec<u64>,
    ptr: usize,
    /// See `Dwrr::force_advance`: an emptied queue leaves the round; the
    /// pointer must move on rather than re-credit it in place.
    force_advance: bool,
    round_start: Option<u64>,
    estimator: RoundTimeEstimator,
}

impl Wrr {
    /// Creates the policy with per-queue packet weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is zero.
    pub fn new(weights: Vec<u64>) -> Self {
        assert!(
            !weights.is_empty() && weights.iter().all(|w| *w > 0),
            "WRR weights must be positive"
        );
        let n = weights.len();
        Wrr {
            weights,
            credits: vec![0; n],
            credited: vec![false; n],
            backlog_items: vec![0; n],
            ptr: 0,
            force_advance: false,
            round_start: None,
            estimator: RoundTimeEstimator::paper_default(1500, 10_000_000_000),
        }
    }

    /// Replaces the round-time estimator.
    pub fn with_estimator(mut self, estimator: RoundTimeEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Moves the service pointer on, completing a round on wrap-around.
    fn advance(&mut self, n: usize, now_nanos: u64) {
        self.credited[self.ptr] = false;
        self.ptr += 1;
        if self.ptr == n {
            self.ptr = 0;
            let start = self.round_start.take().unwrap_or(now_nanos);
            self.estimator.on_round_complete(start, now_nanos);
            self.round_start = Some(now_nanos);
        }
    }
}

impl Scheduler for Wrr {
    fn num_queues(&self) -> usize {
        self.weights.len()
    }

    fn on_enqueue(&mut self, q: usize, _bytes: u64, now_nanos: u64) {
        self.backlog_items[q] += 1;
        self.estimator.on_enqueue(now_nanos);
    }

    fn select(&mut self, state: &QueueState<'_>, now_nanos: u64) -> Option<usize> {
        if state.all_empty() {
            return None;
        }
        let n = self.weights.len();
        if self.round_start.is_none() {
            self.round_start = Some(now_nanos);
        }
        if self.force_advance {
            self.force_advance = false;
            self.advance(n, now_nanos);
        }
        loop {
            if state.is_active(self.ptr) {
                if !self.credited[self.ptr] {
                    self.credits[self.ptr] = self.weights[self.ptr];
                    self.credited[self.ptr] = true;
                }
                if self.credits[self.ptr] > 0 {
                    return Some(self.ptr);
                }
            } else {
                self.credits[self.ptr] = 0;
            }
            self.advance(n, now_nanos);
        }
    }

    fn on_dequeue(&mut self, q: usize, _bytes: u64, _now_nanos: u64) {
        self.credits[q] = self.credits[q].saturating_sub(1);
        self.backlog_items[q] -= 1;
        if self.backlog_items[q] == 0 {
            self.credits[q] = 0;
            self.credited[q] = false;
            if self.ptr == q {
                self.force_advance = true;
            }
        }
    }

    fn weights(&self) -> Vec<u64> {
        self.weights.clone()
    }

    fn round_time_nanos(&self) -> Option<u64> {
        Some(self.estimator.smoothed_nanos())
    }

    fn name(&self) -> &'static str {
        "wrr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{served_under_backlog, B};
    use crate::MultiQueue;
    use pmsb_simcore::rng::SimRng;

    #[test]
    fn serves_weight_packets_per_round() {
        let mut mq = MultiQueue::new(Box::new(Wrr::new(vec![2, 1])), u64::MAX);
        for _ in 0..6 {
            mq.enqueue(0, B(100), 0).unwrap();
            mq.enqueue(1, B(100), 0).unwrap();
        }
        let order: Vec<usize> = (0..6).map(|t| mq.dequeue(t).unwrap().0).collect();
        assert_eq!(order, vec![0, 0, 1, 0, 0, 1]);
    }

    /// Mirror of the DWRR drain-refill regression for WRR.
    #[test]
    fn drain_refill_queue_does_not_starve_backlogged_queue() {
        let mut mq = MultiQueue::new(Box::new(Wrr::new(vec![1, 1])), u64::MAX);
        for _ in 0..10 {
            mq.enqueue(1, B(500), 0).unwrap();
        }
        let mut served1 = 0;
        for t in 0..20u64 {
            mq.enqueue(0, B(500), t).unwrap();
            let (q, _) = mq.dequeue(t).unwrap();
            if q == 1 {
                served1 += 1;
            }
            // Drain queue 0 if it was not served, to recreate the
            // one-packet-at-a-time pattern.
            if q == 1 {
                mq.dequeue(t);
            }
        }
        assert!(served1 >= 9, "queue 1 starved: {served1}/20 services");
    }

    #[test]
    fn skips_empty_queues() {
        let mut mq = MultiQueue::new(Box::new(Wrr::new(vec![1, 1, 1])), u64::MAX);
        mq.enqueue(1, B(100), 0).unwrap();
        assert_eq!(mq.dequeue(1).unwrap().0, 1);
        assert!(mq.dequeue(2).is_none());
    }

    /// Packet service counts are proportional to weights under permanent
    /// backlog of uniform packets, for seeded-random weight vectors.
    #[test]
    fn proportional_packets() {
        let mut rng = SimRng::seed_from(0xA11);
        for _ in 0..32 {
            let n = 2 + rng.below(3);
            let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(5) as u64).collect();
            let served = served_under_backlog(Box::new(Wrr::new(weights.clone())), 1000, 5000);
            let total: u64 = served.iter().sum();
            let wsum: u64 = weights.iter().sum();
            for (q, w) in weights.iter().enumerate() {
                let got = served[q] as f64 / total as f64;
                let want = *w as f64 / wsum as f64;
                assert!((got - want).abs() < 0.05, "queue {q}: {got} vs {want}");
            }
        }
    }
}
