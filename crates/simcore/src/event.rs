//! The future-event list and simulation driver.
//!
//! [`EventQueue`] is a priority queue ordered by event time with ties broken
//! by insertion order, which makes runs fully deterministic: two simulations
//! that schedule the same events in the same order execute them identically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{EventHandler, SimTime};

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events pop in nondecreasing time order; events scheduled for the same
/// instant pop in the order they were pushed (FIFO), never arbitrarily.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to occur at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when scheduling into the past — that is always
    /// a logic error in the model.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// The current simulation clock: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (a cheap progress/complexity
    /// counter for benchmarks).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

/// Drives an [`EventHandler`] until a deadline or event exhaustion.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{EventHandler, EventQueue, Simulation, SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl EventHandler for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         if self.0 < 10 {
///             q.push(now + SimDuration::from_micros(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter(0));
/// sim.queue.push(SimTime::ZERO, ());
/// sim.run_until(SimTime::from_nanos(u64::MAX));
/// assert_eq!(sim.handler.0, 10);
/// ```
pub struct Simulation<H: EventHandler> {
    /// The model being simulated.
    pub handler: H,
    /// The future-event list.
    pub queue: EventQueue<H::Event>,
}

impl<H: EventHandler> Simulation<H> {
    /// Creates a simulation around `handler` with an empty event queue.
    pub fn new(handler: H) -> Self {
        Simulation {
            handler,
            queue: EventQueue::new(),
        }
    }

    /// Runs until the queue drains or the next event is strictly after
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event must pop");
            self.handler.handle(now, ev, &mut self.queue);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Ticker;
        impl EventHandler for Ticker {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
                q.push(now + SimDuration::from_micros(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker);
        sim.queue.push(SimTime::ZERO, ());
        let n = sim.run_until(SimTime::from_nanos(10_500));
        // Events at 0, 1us, ..., 10us inclusive = 11 events.
        assert_eq!(n, 11);
        assert_eq!(sim.queue.peek_time(), Some(SimTime::from_nanos(11_000)));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
