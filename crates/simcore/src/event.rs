//! The future-event list and simulation driver.
//!
//! [`EventQueue`] is a priority queue ordered by event time with ties broken
//! by insertion order, which makes runs fully deterministic: two simulations
//! that schedule the same events in the same order execute them identically.
//!
//! Internally it is a hierarchical timing wheel rather than a binary heap:
//! near-future events land in per-nanosecond buckets whose push and pop are
//! amortized `O(1)`, and only events beyond the wheel horizon (~16.7 ms)
//! fall back to a heap. See `DESIGN.md` §"Future-event list" for the layout
//! and the determinism argument; `crate::heap_fel::HeapQueue` is the
//! reference implementation the wheel is differentially tested against.

use std::collections::{BinaryHeap, VecDeque};

use crate::heap_fel::Scheduled;
use crate::{EventHandler, SimTime};

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `k` slots are `2^(6k)` ns wide; level 0 slots are a
/// single nanosecond, so one slot holds events of exactly one timestamp.
const LEVELS: usize = 4;
/// Bits covered by the wheel. Events more than `2^24` ns (~16.7 ms) past
/// the clock's current `2^24` ns window go to the overflow heap.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// A deterministic future-event list.
///
/// Events pop in nondecreasing time order; events scheduled for the same
/// instant pop in the order they were pushed (FIFO), never arbitrarily.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    /// `slots[level * SLOTS + i]` holds events whose time agrees with the
    /// clock above bit `6 * (level + 1)` and whose level-`level` digit is
    /// `i`. Invariant: every stored event is strictly later than `now`, so
    /// a slot at or below the clock's digit on its level is always empty.
    slots: Box<[Vec<Entry<E>>]>,
    /// Bit `i` of `occupied[level]` is set iff `slots[level * SLOTS + i]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// Events beyond the wheel horizon. Always strictly later than every
    /// event in the wheel, so they only need inspecting when the wheel
    /// drains or the clock approaches them.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Events at exactly `now`, in seq (= FIFO) order. `pop` serves from
    /// here; pushes at the current instant append here directly.
    batch: VecDeque<Entry<E>>,
    now: u64,
    next_seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            batch: VecDeque::new(),
            now: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Creates an empty queue sized for roughly `events` concurrently
    /// pending events (see [`EventQueue::reserve`]).
    pub fn with_capacity(events: usize) -> Self {
        let mut q = Self::new();
        q.reserve(events);
        q
    }

    /// Pre-sizes internal storage for `additional` more concurrently
    /// pending events, so steady-state operation does not grow buffers.
    ///
    /// This is a hint: the near-future buckets and the live batch get a
    /// per-bucket share, the overflow heap room for the full count (the
    /// worst case when everything is scheduled past the wheel horizon).
    pub fn reserve(&mut self, additional: usize) {
        self.overflow.reserve(additional);
        let per_slot = additional.div_ceil(SLOTS).min(1 << 16);
        for slot in self.slots[..SLOTS].iter_mut() {
            slot.reserve(per_slot);
        }
        self.batch.reserve(per_slot.max(SLOTS));
    }

    /// Schedules `event` to occur at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when scheduling into the past — that is always
    /// a logic error in the model.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at.as_nanos() >= self.now,
            "scheduling into the past: at={at} now={}",
            SimTime::from_nanos(self.now)
        );
        // Release builds clamp instead of corrupting the wheel.
        let at = at.as_nanos().max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(Entry { at, seq, event });
    }

    /// Files an entry into the batch, a wheel slot, or the overflow heap,
    /// always relative to the current clock.
    fn place(&mut self, e: Entry<E>) {
        let x = e.at ^ self.now;
        if x == 0 {
            // At the current instant: `e.seq` is the largest seq at this
            // time, so appending to the live batch keeps FIFO order.
            self.batch.push_back(e);
        } else if x >> WHEEL_BITS != 0 {
            self.overflow.push(Scheduled {
                at: SimTime::from_nanos(e.at),
                seq: e.seq,
                event: e.event,
            });
        } else {
            // Highest bit where `e.at` differs from the clock picks the
            // level; the event's digit on that level picks the slot.
            let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
            let slot = ((e.at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.slots[level * SLOTS + slot].push(e);
            self.occupied[level] |= 1 << slot;
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.batch.is_empty() && !self.refill() {
            return None;
        }
        let e = self.batch.pop_front().expect("refill produced a batch");
        debug_assert_eq!(e.at, self.now);
        self.len -= 1;
        Some((SimTime::from_nanos(e.at), e.event))
    }

    /// Like [`pop`](Self::pop), but returns `None` (leaving the event
    /// queued) when the earliest event is strictly after `deadline`.
    ///
    /// This is the driver-loop primitive: it locates the next event once,
    /// where a `peek_time` + `pop` pair would scan the wheel twice. When
    /// it declines past-deadline work the clock may still have advanced to
    /// that pending event's timestamp — the same instant `pop` would
    /// report — so subsequent pushes must not target earlier times, which
    /// holds for any handler that only schedules at or after the events it
    /// receives.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.batch.is_empty() && !self.refill() {
            return None;
        }
        if self.now > deadline.as_nanos() {
            return None;
        }
        let e = self.batch.pop_front().expect("refill produced a batch");
        debug_assert_eq!(e.at, self.now);
        self.len -= 1;
        Some((SimTime::from_nanos(e.at), e.event))
    }

    /// Advances the clock to the earliest pending timestamp and moves that
    /// instant's events (seq-sorted) into the batch. Returns `false` iff
    /// the queue is empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        loop {
            // A migration or cascade from a previous round may have
            // deposited events at exactly `now`; they arrive out of seq
            // order, so sort.
            if !self.batch.is_empty() {
                self.batch.make_contiguous().sort_unstable_by_key(|e| e.seq);
                return true;
            }
            // Empty wheel: serve the overflow heap directly instead of
            // round-tripping events through slots. The heap ties on seq,
            // so same-instant events already pop FIFO. Later in-window
            // overflow events stay put; the migration pass below (and the
            // overflow comparison in `peek_time`) keeps them ordered
            // against anything pushed into the wheel meanwhile.
            if self.occupied == [0u64; LEVELS] {
                let Some(s) = self.overflow.pop() else {
                    debug_assert_eq!(self.len, 0);
                    return false;
                };
                self.now = s.at.as_nanos();
                self.batch.push_back(Entry {
                    at: self.now,
                    seq: s.seq,
                    event: s.event,
                });
                while self
                    .overflow
                    .peek()
                    .is_some_and(|t| t.at.as_nanos() == self.now)
                {
                    let s = self.overflow.pop().expect("peeked entry pops");
                    self.batch.push_back(Entry {
                        at: self.now,
                        seq: s.seq,
                        event: s.event,
                    });
                }
                return true;
            }
            // Pull overflow events that have entered the wheel horizon so
            // wheel order alone decides the next slot.
            while self
                .overflow
                .peek()
                .is_some_and(|top| (top.at.as_nanos() ^ self.now) >> WHEEL_BITS == 0)
            {
                let s = self.overflow.pop().expect("peeked entry pops");
                self.place(Entry {
                    at: s.at.as_nanos(),
                    seq: s.seq,
                    event: s.event,
                });
            }
            if !self.batch.is_empty() {
                self.batch.make_contiguous().sort_unstable_by_key(|e| e.seq);
                return true;
            }
            // Level 0: the slot index *is* the timestamp's low 6 bits, so
            // the first occupied slot at/after the cursor is the minimum.
            let m0 = self.occupied[0] & (!0u64 << (self.now & 63) as u32);
            debug_assert_eq!(m0, self.occupied[0], "level-0 slot in the past");
            if m0 != 0 {
                let s = m0.trailing_zeros() as usize;
                self.occupied[0] &= !(1u64 << s);
                self.now = (self.now & !63) | s as u64;
                let slot = &mut self.slots[s];
                slot.sort_unstable_by_key(|e| e.seq);
                self.batch.extend(slot.drain(..));
                return true;
            }
            // Cascade: take the earliest occupied slot of the lowest
            // non-empty level, jump the clock to its start (nothing can
            // exist before it), and redistribute at finer granularity.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let m = self.occupied[level] & (!0u64 << ((self.now >> shift) & 63) as u32);
                debug_assert_eq!(m, self.occupied[level], "wheel slot in the past");
                if m == 0 {
                    continue;
                }
                let s = m.trailing_zeros() as usize;
                let window_mask = (1u64 << (shift + SLOT_BITS)) - 1;
                let start = (self.now & !window_mask) | ((s as u64) << shift);
                debug_assert!(start > self.now);
                self.now = start;
                self.occupied[level] &= !(1u64 << s);
                let mut drained = std::mem::take(&mut self.slots[level * SLOTS + s]);
                for e in drained.drain(..) {
                    self.place(e);
                }
                self.slots[level * SLOTS + s] = drained; // keep the buffer
                cascaded = true;
                break;
            }
            debug_assert!(cascaded, "non-empty wheel must yield a slot");
        }
    }

    /// The time of the earliest pending event, if any. Never advances the
    /// clock or reorganizes the wheel.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.batch.is_empty() {
            return Some(SimTime::from_nanos(self.now));
        }
        // The overflow heap can hold events inside the current window
        // (left behind by the empty-wheel fast path in `refill`), so the
        // wheel minimum must be compared against the overflow top.
        let over = self.overflow.peek().map(|s| s.at);
        let wheel = self.wheel_min_time();
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// The earliest timestamp stored in the wheel slots, if any.
    fn wheel_min_time(&self) -> Option<SimTime> {
        let m0 = self.occupied[0] & (!0u64 << (self.now & 63) as u32);
        if m0 != 0 {
            let s = m0.trailing_zeros() as u64;
            return Some(SimTime::from_nanos((self.now & !63) | s));
        }
        for level in 1..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let m = self.occupied[level] & (!0u64 << ((self.now >> shift) & 63) as u32);
            if m != 0 {
                // Events on lower levels always precede higher ones, and
                // slots within a level are time-ordered, so the earliest
                // event sits in this slot; its entries are unordered.
                let s = m.trailing_zeros() as usize;
                let slot = &self.slots[level * SLOTS + s];
                let min = slot.iter().map(|e| e.at).min().expect("slot is occupied");
                return Some(SimTime::from_nanos(min));
            }
        }
        None
    }

    /// The current simulation clock: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (a cheap progress/complexity
    /// counter for benchmarks).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("now", &SimTime::from_nanos(self.now))
            .finish()
    }
}

/// Drives an [`EventHandler`] until a deadline or event exhaustion.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{EventHandler, EventQueue, Simulation, SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl EventHandler for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         if self.0 < 10 {
///             q.push(now + SimDuration::from_micros(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter(0));
/// sim.queue.push(SimTime::ZERO, ());
/// sim.run_until(SimTime::from_nanos(u64::MAX));
/// assert_eq!(sim.handler.0, 10);
/// ```
pub struct Simulation<H: EventHandler> {
    /// The model being simulated.
    pub handler: H,
    /// The future-event list.
    pub queue: EventQueue<H::Event>,
}

impl<H: EventHandler> Simulation<H> {
    /// Creates a simulation around `handler` with an empty event queue.
    pub fn new(handler: H) -> Self {
        Simulation {
            handler,
            queue: EventQueue::new(),
        }
    }

    /// Runs until the queue drains or the next event is strictly after
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some((now, ev)) = self.queue.pop_at_or_before(deadline) {
            self.handler.handle(now, ev, &mut self.queue);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "past-scheduling is a debug_assert; release builds clamp"
    )]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Ticker;
        impl EventHandler for Ticker {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
                q.push(now + SimDuration::from_micros(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker);
        sim.queue.push(SimTime::ZERO, ());
        let n = sim.run_until(SimTime::from_nanos(10_500));
        // Events at 0, 1us, ..., 10us inclusive = 11 events.
        assert_eq!(n, 11);
        assert_eq!(sim.queue.peek_time(), Some(SimTime::from_nanos(11_000)));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }

    #[test]
    fn push_at_current_instant_pops_after_pending_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 1);
        q.push(SimTime::from_nanos(5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Clock is now at 5; scheduling more work at 5 is legal and must
        // run after the already-pending event at 5.
        q.push(SimTime::from_nanos(5), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_overflow_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the 2^24 ns wheel horizon (RTO-style deadlines).
        q.push(SimTime::from_nanos(4_000_000_000), "rto");
        q.push(SimTime::from_nanos(100_000_000), "late");
        q.push(SimTime::from_nanos(30), "soon");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(30)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(30), "soon"));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(100_000_000)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(100_000_000), "late"));
        assert_eq!(
            q.pop().unwrap(),
            (SimTime::from_nanos(4_000_000_000), "rto")
        );
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_pushes_preserve_order_across_cascades() {
        // Alternate pops with pushes that straddle level boundaries so
        // events must survive redistribution; order must stay (time, seq).
        let mut q = EventQueue::with_capacity(64);
        let mut expect = Vec::new();
        for i in 0u64..32 {
            let t = 1 + i * 97; // crosses several level-0/1 windows
            q.push(SimTime::from_nanos(t), (t, i));
            expect.push((t, i));
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn len_tracks_batch_wheel_and_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), ());
        q.push(SimTime::from_nanos(1_000), ());
        q.push(SimTime::from_nanos(1_000_000_000), ());
        assert_eq!(q.len(), 3);
        q.pop();
        q.push(SimTime::from_nanos(1), ()); // at the current instant
        assert_eq!(q.len(), 3);
        while q.pop().is_some() {}
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 4);
    }
}
