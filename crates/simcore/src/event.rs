//! The future-event list and simulation driver.
//!
//! [`EventQueue`] is a priority queue ordered by event time with ties broken
//! by insertion order, which makes runs fully deterministic: two simulations
//! that schedule the same events in the same order execute them identically.
//!
//! Internally it is a hierarchical timing wheel rather than a binary heap:
//! near-future events land in per-nanosecond buckets whose push and pop are
//! amortized `O(1)`, and only events beyond the wheel horizon (~4.9 hours
//! of simulated time) fall back to a heap. Buckets are intrusive singly
//! linked lists threaded through one entry arena, so a push is an arena
//! append plus a head link and a cascade relinks pointers without moving
//! events. The first level is deliberately wide (256 one-nanosecond slots)
//! so steady-state patterns whose horizon fits inside it never pay for a
//! cascade, and a bucket holding a single event is served in place — the
//! small-occupancy fast paths. See `DESIGN.md` §"Future-event list" for the
//! layout and the determinism argument; `crate::heap_fel::HeapQueue` is the
//! reference implementation the wheel is differentially tested against.

use std::collections::{BinaryHeap, VecDeque};

use crate::heap_fel::Scheduled;
use crate::{EventHandler, SimTime};

/// Ancestor push instants carried in a [`TieKey`] (including the
/// event's own push instant). Two same-time events whose causal chains
/// differ anywhere in the last sixteen hops order exactly as a
/// sequential run would; chains in lockstep for longer than that
/// collide, which [`EventQueue::ambiguous_ties`] detects so sharded
/// runs can fall back rather than diverge. Sixteen is empirically deep
/// enough that the committed campaigns shard without a single
/// collision; deeper keys buy rarer fallbacks at a memory-bandwidth
/// cost on every scheduled event.
pub(crate) const KEY_DEPTH: usize = 16;

/// An opaque FEL tie-breaking key: the instant an event was pushed plus
/// a bounded window of its ancestors' push instants, compared
/// lexicographically before insertion order. [`EventQueue::push`]
/// derives it automatically (the key of the event being handled seeds
/// its children's keys), which keeps plain sequential use exactly FIFO
/// per instant. Conservative-parallel runs capture a sender's key with
/// [`EventQueue::current_tie_key`] and replay it on another shard via
/// [`EventQueue::push_ordered`], so a message physically inserted at a
/// window barrier still sorts where the sequential run's push (made
/// mid-handling at the send instant) would have placed it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct TieKey(pub(crate) [u64; KEY_DEPTH]);

/// Low bits of a `seq` holding the per-queue push counter. The high bits
/// tag cross-shard insertions ([`SEQ_MSG_BIT`] plus the source stream),
/// so the ambiguity detector can tell whether a full-key collision is
/// benign (plain FIFO pushes, or messages from one stream whose barrier
/// order already reproduces the sender's emission order) or genuinely
/// unresolvable from local information.
const SEQ_COUNTER_BITS: u32 = 40;
/// Marks a `seq` as belonging to a [`EventQueue::push_ordered`] insertion.
const SEQ_MSG_BIT: u64 = 1 << 63;

/// log2 of the slot count of the first wheel level. Level 0 slots are a
/// single nanosecond wide, so one slot holds events of exactly one
/// timestamp; making the level wide (256 slots) lets short-horizon
/// steady states (e.g. a NIC serializing back-to-back packets) run
/// entirely inside it without cascading.
const L0_BITS: u32 = 8;
/// Slots on level 0 (256).
const L0_SLOTS: usize = 1 << L0_BITS;
/// 64-bit occupancy words covering level 0.
const L0_WORDS: usize = L0_SLOTS / 64;
/// log2 of the slot count per upper wheel level.
const UP_BITS: u32 = 6;
/// Slots per upper level (64).
const UP_SLOTS: usize = 1 << UP_BITS;
/// Upper wheel levels. Upper level `k` (1-based) slots are
/// `2^(8 + 6(k-1))` ns wide.
const UP_LEVELS: usize = 6;
/// Bits covered by the wheel. Events more than `2^44` ns (~4.9 h) past
/// the clock's current `2^44` ns window go to the overflow heap.
const WHEEL_BITS: u32 = L0_BITS + UP_BITS * UP_LEVELS as u32;
/// Total slots across all levels.
const SLOT_COUNT: usize = L0_SLOTS + UP_SLOTS * UP_LEVELS;
/// Null link in the arena's intrusive lists.
const NIL: u32 = u32::MAX;

/// Bit shift selecting the digit of upper level `level` (1-based).
const fn up_shift(level: usize) -> u32 {
    L0_BITS + UP_BITS * (level as u32 - 1)
}

/// Index of upper level `level`'s first slot in the flat head table.
const fn up_base(level: usize) -> usize {
    L0_SLOTS + (level - 1) * UP_SLOTS
}

/// An arena node: one scheduled event threaded into a slot's list.
/// `event` is `None` only while the node sits on the free list.
struct Node<E> {
    at: u64,
    key: TieKey,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// An event staged for immediate service (popped out of the arena).
struct Staged<E> {
    at: u64,
    key: TieKey,
    seq: u64,
    event: E,
}

/// A deterministic future-event list.
///
/// Events pop in nondecreasing time order; events scheduled for the same
/// instant pop in the order they were pushed (FIFO), never arbitrarily.
/// More precisely, ties break by `(key, push order)` where `key` is a
/// [`TieKey`] — the push instant plus a window of ancestor push
/// instants. In plain sequential use the key is nondecreasing across
/// pushes, so ties are exactly FIFO; [`EventQueue::push_ordered`] lets a
/// sharded run insert a cross-shard message with the sender's key so it
/// sorts where its sequential push would have occurred.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    /// Backing store for every event resident in a wheel slot. Nodes are
    /// recycled through `free_head`, so steady-state operation allocates
    /// only when concurrency grows past its high-water mark.
    arena: Vec<Node<E>>,
    /// Head of the free-node list threaded through `Node::next`.
    free_head: u32,
    /// `heads[0..L0_SLOTS]` are the level-0 buckets; slot `i` holds events
    /// whose time agrees with the clock above bit `L0_BITS` and whose low
    /// 8 bits are `i`. `heads[up_base(k)..up_base(k) + UP_SLOTS]` are
    /// upper level `k`'s buckets keyed by that level's 6-bit digit. Each
    /// bucket is an unordered intrusive list into `arena` (consumers sort
    /// by seq or redistribute). Invariant: every stored event is strictly
    /// later than `now`, so a slot at or below the clock's digit on its
    /// level is always empty. Lazily allocated on the first wheel
    /// placement.
    heads: Box<[u32]>,
    /// Bit `i % 64` of `occ0[i / 64]` is set iff level-0 slot `i` is
    /// non-empty.
    occ0: [u64; L0_WORDS],
    /// Bit `i` of `occ_up[k - 1]` is set iff upper level `k`'s slot `i`
    /// is non-empty.
    occ_up: [u64; UP_LEVELS],
    /// Events beyond the wheel horizon. Always strictly later than every
    /// event in the wheel, so they only need inspecting when the wheel
    /// drains or the clock approaches them.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Events at exactly `now`, in seq (= FIFO) order. `pop` serves from
    /// here; pushes at the current instant append here directly.
    batch: VecDeque<Staged<E>>,
    now: u64,
    next_seq: u64,
    /// Tie key of the event most recently popped (the one being
    /// handled); pushes made while handling it derive their keys from
    /// it.
    cur_key: TieKey,
    /// Number of events resident in wheel slots (not batch or overflow):
    /// a one-load emptiness test for the overflow fast path.
    wheel_len: usize,
    /// `true` once [`EventQueue::push_ordered`] has been used: only then
    /// can a tie be ambiguous, so plain sequential queues skip the
    /// detector entirely.
    tagged: bool,
    /// `(at, key, seq)` of the most recently served event, for the
    /// adjacency check in [`note_pop`](Self::note_pop).
    last_pop: (u64, TieKey, u64),
    /// See [`EventQueue::ambiguous_ties`].
    ambiguous_ties: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    ///
    /// Allocation-free: the slot-head table materializes on the first
    /// push that lands inside the wheel horizon, so queues whose events
    /// all sit in the far future (or that are built and thrown away
    /// often) never pay for it.
    pub fn new() -> Self {
        EventQueue {
            arena: Vec::new(),
            free_head: NIL,
            heads: Box::default(),
            occ0: [0; L0_WORDS],
            occ_up: [0; UP_LEVELS],
            overflow: BinaryHeap::new(),
            batch: VecDeque::new(),
            now: 0,
            next_seq: 0,
            cur_key: TieKey::default(),
            wheel_len: 0,
            tagged: false,
            last_pop: (u64::MAX, TieKey::default(), 0),
            ambiguous_ties: 0,
        }
    }

    /// Creates an empty queue sized for roughly `events` concurrently
    /// pending events (see [`EventQueue::reserve`]).
    pub fn with_capacity(events: usize) -> Self {
        let mut q = Self::new();
        q.reserve(events);
        q
    }

    /// Pre-sizes internal storage for `additional` more concurrently
    /// pending events, so steady-state operation does not grow buffers.
    pub fn reserve(&mut self, additional: usize) {
        self.arena.reserve(additional);
        self.ensure_heads();
        self.batch
            .reserve(additional.div_ceil(L0_SLOTS).max(UP_SLOTS));
    }

    /// Schedules `event` to occur at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when scheduling into the past — that is always
    /// a logic error in the model.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at.as_nanos() >= self.now,
            "scheduling into the past: at={at} now={}",
            SimTime::from_nanos(self.now)
        );
        // Release builds clamp instead of corrupting the wheel.
        let at = at.as_nanos().max(self.now);
        let key = self.current_tie_key();
        let seq = self.next_seq;
        self.next_seq += 1;
        let x = at ^ self.now;
        if x == 0 {
            // At the current instant. The overflow heap may still hold
            // events at `now` (the fast pop path leaves same-instant
            // siblings behind); they sort ahead of this push, so stage
            // them first to keep the batch ordered.
            if !self.overflow.is_empty() {
                self.stage_overflow_instant();
            }
            self.batch.push_back(Staged {
                at,
                key,
                seq,
                event,
            });
        } else if x >> WHEEL_BITS != 0 {
            self.overflow.push(Scheduled {
                at: SimTime::from_nanos(at),
                key,
                seq,
                event,
            });
        } else {
            self.ensure_heads();
            let idx = self.alloc_node(at, key, seq, event);
            self.link(idx, at, x);
            self.wheel_len += 1;
        }
    }

    /// The [`TieKey`] a [`push`](Self::push) made at this point in
    /// execution would receive: the current instant prepended to the
    /// handled event's ancestor window. A sharded run captures this on
    /// the sending shard when it emits a cross-shard message.
    #[inline]
    pub fn current_tie_key(&self) -> TieKey {
        let mut k = [0; KEY_DEPTH];
        k[0] = self.now;
        k[1..].copy_from_slice(&self.cur_key.0[..KEY_DEPTH - 1]);
        TieKey(k)
    }

    /// Schedules `event` at `at` with an explicit tie-break `key` (a
    /// sender-side [`EventQueue::current_tie_key`] capture). Same-time
    /// events pop in ascending `(key, push order)`; [`EventQueue::push`]
    /// derives keys from the current instant, so mixing the two is
    /// well-defined.
    ///
    /// This exists for conservative-parallel runs: a cross-shard message
    /// is physically inserted at a window barrier (late push order) but
    /// was logically sent at an earlier instant on another shard. Keying
    /// it by the sequential push's key reproduces the sequential pop
    /// order wherever the causal chains differ inside the key window.
    ///
    /// `stream` identifies the sending shard. Callers must insert
    /// same-instant messages in `(source, emission order)` sequence —
    /// then a full-key collision between two messages of one stream is
    /// still served in the sender's emission order, and only collisions
    /// across streams (or against local pushes) are counted by
    /// [`EventQueue::ambiguous_ties`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds unless the key's push instant precedes
    /// `at` and `at` is strictly in the future — lookahead guarantees
    /// both for message delivery.
    pub fn push_ordered(&mut self, at: SimTime, key: TieKey, stream: u32, event: E) {
        let at = at.as_nanos();
        debug_assert!(
            key.0[0] <= at,
            "tie key after the event time: key={key:?} at={at}"
        );
        debug_assert!(
            at > self.now,
            "ordered push must target the strict future: at={at} now={}",
            self.now
        );
        debug_assert!(
            u64::from(stream) < SEQ_MSG_BIT >> SEQ_COUNTER_BITS,
            "stream id too large to tag: {stream}"
        );
        if at <= self.now {
            // Release-build fallback: degrade to a plain push.
            return self.push(SimTime::from_nanos(at), event);
        }
        self.tagged = true;
        debug_assert!(
            self.next_seq >> SEQ_COUNTER_BITS == 0,
            "seq counter overflow"
        );
        let seq = SEQ_MSG_BIT | u64::from(stream) << SEQ_COUNTER_BITS | self.next_seq;
        self.next_seq += 1;
        let x = at ^ self.now;
        if x >> WHEEL_BITS != 0 {
            self.overflow.push(Scheduled {
                at: SimTime::from_nanos(at),
                key,
                seq,
                event,
            });
        } else {
            self.ensure_heads();
            let idx = self.alloc_node(at, key, seq, event);
            self.link(idx, at, x);
            self.wheel_len += 1;
        }
    }

    /// Materializes the lazily-allocated slot-head table.
    #[cold]
    fn alloc_heads(&mut self) {
        self.heads = vec![NIL; SLOT_COUNT].into_boxed_slice();
    }

    /// Ensures the slot-head table is allocated before a wheel placement.
    #[inline]
    fn ensure_heads(&mut self) {
        if self.heads.is_empty() {
            self.alloc_heads();
        }
    }

    /// Takes a node off the free list or grows the arena.
    #[inline]
    fn alloc_node(&mut self, at: u64, key: TieKey, seq: u64, event: E) -> u32 {
        let idx = self.free_head;
        if idx != NIL {
            let n = &mut self.arena[idx as usize];
            self.free_head = n.next;
            n.at = at;
            n.key = key;
            n.seq = seq;
            n.event = Some(event);
            idx
        } else {
            let idx = self.arena.len() as u32;
            if self.arena.capacity() < 64 {
                // Skip the smallest rungs of the doubling ladder: a queue
                // that wheel-places anything almost always holds tens of
                // events, and the early grow-and-copy rounds are a
                // measurable share of cold-queue push cost (~64 nodes is
                // ~3 KiB, cheaper than four reallocation memcpys).
                self.arena.reserve(64 - self.arena.len());
            }
            self.arena.push(Node {
                at,
                key,
                seq,
                next: NIL,
                event: Some(event),
            });
            idx
        }
    }

    /// Returns a node (whose event has been taken) to the free list.
    #[inline]
    fn free_node(&mut self, idx: u32) {
        debug_assert!(self.arena[idx as usize].event.is_none());
        self.arena[idx as usize].next = self.free_head;
        self.free_head = idx;
    }

    /// Threads arena node `idx` (scheduled for `at`, `x = at ^ now`) into
    /// its wheel slot. The caller accounts for `wheel_len`.
    #[inline]
    fn link(&mut self, idx: u32, at: u64, x: u64) {
        debug_assert!(x != 0 && x >> WHEEL_BITS == 0);
        let slot = if x >> L0_BITS == 0 {
            let slot = (at & (L0_SLOTS as u64 - 1)) as usize;
            self.occ0[slot >> 6] |= 1 << (slot & 63);
            slot
        } else {
            // Highest bit where `at` differs from the clock picks the
            // upper level; the event's digit on that level picks the slot.
            let level = ((63 - x.leading_zeros() - L0_BITS) / UP_BITS) as usize + 1;
            let slot = ((at >> up_shift(level)) & (UP_SLOTS as u64 - 1)) as usize;
            self.occ_up[level - 1] |= 1 << slot;
            up_base(level) + slot
        };
        self.arena[idx as usize].next = self.heads[slot];
        self.heads[slot] = idx;
    }

    /// Same-instant pop adjacencies whose order the sequential contract
    /// does not determine: the events' full tie keys collide and at
    /// least one side is a [`push_ordered`](Self::push_ordered) insertion
    /// from a different stream than the other. The causal chains agree
    /// through the whole `KEY_DEPTH` window (e.g. two ports serializing
    /// identical packets in lockstep), so no bounded key can recover
    /// where the sequential push would have fallen.
    ///
    /// Zero means the pop sequence served so far is exactly the
    /// sequential run's schedule projected onto this shard: shards share
    /// no state except messages, messages with distinct keys sort where
    /// the key dictates, and the remaining collision classes (plain
    /// local FIFO pairs, one stream's emission order) are reproduced by
    /// construction. Callers use a non-zero count to discard a sharded
    /// run and fall back to the sequential path.
    pub fn ambiguous_ties(&self) -> u64 {
        self.ambiguous_ties
    }

    /// Feeds the ambiguity detector with a served event. Only comparing
    /// the seqs' tag bits before anything else keeps the common cases —
    /// untagged queue, differing instants, two plain pushes — to a few
    /// integer compares per pop.
    #[inline]
    fn note_pop(&mut self, at: u64, key: TieKey, seq: u64) {
        if !self.tagged {
            return;
        }
        let (p_at, p_key, p_seq) = self.last_pop;
        if p_at == at && p_seq >> SEQ_COUNTER_BITS != seq >> SEQ_COUNTER_BITS && p_key == key {
            self.ambiguous_ties += 1;
        }
        self.last_pop = (at, key, seq);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Hot path 1: the current instant's batch is already staged.
        if let Some(e) = self.batch.pop_front() {
            debug_assert_eq!(e.at, self.now);
            self.cur_key = e.key;
            self.note_pop(e.at, e.key, e.seq);
            return Some((SimTime::from_nanos(e.at), e.event));
        }
        // Hot path 2: nothing in the wheel — serve the overflow heap
        // directly; it already orders by (time, key, seq).
        if self.wheel_len == 0 {
            let s = self.overflow.pop()?;
            self.now = s.at.as_nanos();
            self.cur_key = s.key;
            self.note_pop(self.now, s.key, s.seq);
            return Some((s.at, s.event));
        }
        self.pop_slow(u64::MAX)
    }

    /// Like [`pop`](Self::pop), but returns `None` (leaving the event
    /// queued) when the earliest event is strictly after `deadline`.
    ///
    /// This is the driver-loop primitive: it locates the next event once,
    /// where a `peek_time` + `pop` pair would scan the wheel twice. When
    /// it declines past-deadline work the clock may still have advanced to
    /// that pending event's timestamp — the same instant `pop` would
    /// report — so subsequent pushes must not target earlier times, which
    /// holds for any handler that only schedules at or after the events it
    /// receives.
    #[inline]
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if let Some(e) = self.batch.pop_front() {
            debug_assert_eq!(e.at, self.now);
            if e.at > deadline.as_nanos() {
                self.batch.push_front(e);
                return None;
            }
            self.cur_key = e.key;
            self.note_pop(e.at, e.key, e.seq);
            return Some((SimTime::from_nanos(e.at), e.event));
        }
        self.pop_slow(deadline.as_nanos())
    }

    /// Takes the staged event out of arena node `idx` and recycles the
    /// node.
    #[inline]
    fn unstage(&mut self, idx: u32) -> Staged<E> {
        let n = &mut self.arena[idx as usize];
        let staged = Staged {
            at: n.at,
            key: n.key,
            seq: n.seq,
            event: n.event.take().expect("live arena node"),
        };
        self.free_node(idx);
        staged
    }

    /// Locates, dequeues, and returns the earliest event when the live
    /// batch is empty: serves single events straight from the overflow
    /// heap or a single-entry bucket (the small-occupancy fast paths), and
    /// only stages a batch when an instant holds several events or a
    /// cascade is required.
    fn pop_slow(&mut self, deadline: u64) -> Option<(SimTime, E)> {
        loop {
            // A migration or cascade from a previous round may have
            // deposited events at exactly `now`; they arrive out of
            // order, so sort before serving (all share `at`, so
            // `(key, seq)` is the full tie order).
            if !self.batch.is_empty() {
                self.batch
                    .make_contiguous()
                    .sort_unstable_by_key(|e| (e.key, e.seq));
                if self.now > deadline {
                    return None;
                }
                let e = self.batch.pop_front().expect("batch is non-empty");
                self.cur_key = e.key;
                self.note_pop(e.at, e.key, e.seq);
                return Some((SimTime::from_nanos(e.at), e.event));
            }
            // Empty wheel: serve the overflow heap directly instead of
            // round-tripping events through slots. The heap ties on seq,
            // so same-instant events already pop FIFO; siblings left
            // behind are staged by `push` if anything is pushed at their
            // instant. Later in-window overflow events stay put; the
            // migration pass below (and the overflow comparison in
            // `peek_time`) keeps them ordered against anything pushed
            // into the wheel meanwhile.
            if self.wheel_len == 0 {
                let s = self.overflow.pop()?;
                let at = s.at.as_nanos();
                self.now = at;
                if at > deadline {
                    // Declined: stage the event so it stays ahead of any
                    // later push at this instant.
                    self.batch.push_back(Staged {
                        at,
                        key: s.key,
                        seq: s.seq,
                        event: s.event,
                    });
                    return None;
                }
                self.cur_key = s.key;
                self.note_pop(at, s.key, s.seq);
                return Some((s.at, s.event));
            }
            // Pull overflow events that have entered the wheel horizon so
            // wheel order alone decides the next slot.
            if !self.overflow.is_empty() {
                while self
                    .overflow
                    .peek()
                    .is_some_and(|top| (top.at.as_nanos() ^ self.now) >> WHEEL_BITS == 0)
                {
                    let s = self.overflow.pop().expect("peeked entry pops");
                    let at = s.at.as_nanos();
                    let x = at ^ self.now;
                    if x == 0 {
                        // The heap pops same-instant events in
                        // (key, seq) order, so appending keeps the
                        // batch sorted.
                        self.batch.push_back(Staged {
                            at,
                            key: s.key,
                            seq: s.seq,
                            event: s.event,
                        });
                    } else {
                        let idx = self.alloc_node(at, s.key, s.seq, s.event);
                        self.link(idx, at, x);
                        self.wheel_len += 1;
                    }
                }
                if !self.batch.is_empty() {
                    continue;
                }
            }
            // Level 0: the slot index *is* the timestamp's low 8 bits, so
            // the first occupied slot at/after the cursor is the minimum.
            let cur = (self.now & (L0_SLOTS as u64 - 1)) as usize;
            let w0 = cur >> 6;
            #[cfg(debug_assertions)]
            for w in 0..w0 {
                debug_assert_eq!(self.occ0[w], 0, "level-0 word in the past");
            }
            let mut hit = {
                let m = self.occ0[w0] & (!0u64 << (cur & 63) as u32);
                debug_assert_eq!(m, self.occ0[w0], "level-0 slot in the past");
                (m != 0).then_some((w0, m))
            };
            if hit.is_none() {
                for w in w0 + 1..L0_WORDS {
                    if self.occ0[w] != 0 {
                        hit = Some((w, self.occ0[w]));
                        break;
                    }
                }
            }
            if let Some((w, m)) = hit {
                let slot = w * 64 + m.trailing_zeros() as usize;
                self.occ0[w] &= !(1u64 << (slot & 63));
                self.now = (self.now & !(L0_SLOTS as u64 - 1)) | slot as u64;
                let mut idx = std::mem::replace(&mut self.heads[slot], NIL);
                if self.arena[idx as usize].next == NIL && self.now <= deadline {
                    // Single resident event: skip the sort and the batch.
                    self.wheel_len -= 1;
                    let e = self.unstage(idx);
                    self.cur_key = e.key;
                    self.note_pop(e.at, e.key, e.seq);
                    return Some((SimTime::from_nanos(e.at), e.event));
                }
                while idx != NIL {
                    let next = self.arena[idx as usize].next;
                    self.wheel_len -= 1;
                    let staged = self.unstage(idx);
                    self.batch.push_back(staged);
                    idx = next;
                }
                // Loop back: the batch serve at the top sorts by seq and
                // applies the deadline.
                continue;
            }
            // Cascade: take the earliest occupied slot of the lowest
            // non-empty level, jump the clock to its start (nothing can
            // exist before it), and redistribute at finer granularity.
            let mut cascaded = false;
            for level in 1..=UP_LEVELS {
                let shift = up_shift(level);
                let m = self.occ_up[level - 1]
                    & (!0u64 << ((self.now >> shift) & (UP_SLOTS as u64 - 1)) as u32);
                debug_assert_eq!(m, self.occ_up[level - 1], "wheel slot in the past");
                if m == 0 {
                    continue;
                }
                let s = m.trailing_zeros() as usize;
                let slot = up_base(level) + s;
                self.occ_up[level - 1] &= !(1u64 << s);
                let mut idx = std::mem::replace(&mut self.heads[slot], NIL);
                if self.arena[idx as usize].next == NIL {
                    // Every lower level is empty, so this lone entry is the
                    // wheel minimum: serve it without redistribution.
                    self.wheel_len -= 1;
                    let e = self.unstage(idx);
                    self.now = e.at;
                    if e.at > deadline {
                        self.batch.push_back(e);
                        return None;
                    }
                    self.cur_key = e.key;
                    self.note_pop(e.at, e.key, e.seq);
                    return Some((SimTime::from_nanos(e.at), e.event));
                }
                let window_mask = (1u64 << (shift + UP_BITS)) - 1;
                let start = (self.now & !window_mask) | ((s as u64) << shift);
                debug_assert!(start > self.now);
                self.now = start;
                while idx != NIL {
                    let next = self.arena[idx as usize].next;
                    let at = self.arena[idx as usize].at;
                    let x = at ^ start;
                    if x == 0 {
                        // Lands exactly on the window start: stage it.
                        self.wheel_len -= 1;
                        let staged = self.unstage(idx);
                        self.batch.push_back(staged);
                    } else {
                        // Relink at finer granularity; no data moves.
                        self.link(idx, at, x);
                    }
                    idx = next;
                }
                cascaded = true;
                break;
            }
            debug_assert!(cascaded, "non-empty wheel must yield a slot");
        }
    }

    /// Moves every overflow event scheduled for exactly `now` into the
    /// batch (the heap pops them in (key, seq) order, so appending keeps
    /// the batch sorted).
    fn stage_overflow_instant(&mut self) {
        while self
            .overflow
            .peek()
            .is_some_and(|t| t.at.as_nanos() == self.now)
        {
            let s = self.overflow.pop().expect("peeked entry pops");
            self.batch.push_back(Staged {
                at: self.now,
                key: s.key,
                seq: s.seq,
                event: s.event,
            });
        }
    }

    /// The time of the earliest pending event, if any. Never advances the
    /// clock or reorganizes the wheel.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.batch.is_empty() {
            return Some(SimTime::from_nanos(self.now));
        }
        // The overflow heap can hold events inside the current window
        // (left behind by the empty-wheel fast path in `pop_slow`), so
        // the wheel minimum must be compared against the overflow top.
        let over = self.overflow.peek().map(|s| s.at);
        let wheel = self.wheel_min_time();
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// The earliest timestamp stored in the wheel slots, if any.
    fn wheel_min_time(&self) -> Option<SimTime> {
        let cur = (self.now & (L0_SLOTS as u64 - 1)) as usize;
        let w0 = cur >> 6;
        let m = self.occ0[w0] & (!0u64 << (cur & 63) as u32);
        if m != 0 {
            let slot = (w0 * 64) as u64 + m.trailing_zeros() as u64;
            return Some(SimTime::from_nanos(
                (self.now & !(L0_SLOTS as u64 - 1)) | slot,
            ));
        }
        for w in w0 + 1..L0_WORDS {
            if self.occ0[w] != 0 {
                let slot = (w * 64) as u64 + self.occ0[w].trailing_zeros() as u64;
                return Some(SimTime::from_nanos(
                    (self.now & !(L0_SLOTS as u64 - 1)) | slot,
                ));
            }
        }
        for level in 1..=UP_LEVELS {
            let shift = up_shift(level);
            let m = self.occ_up[level - 1]
                & (!0u64 << ((self.now >> shift) & (UP_SLOTS as u64 - 1)) as u32);
            if m != 0 {
                // Events on lower levels always precede higher ones, and
                // slots within a level are time-ordered, so the earliest
                // event sits in this slot; its entries are unordered.
                let s = m.trailing_zeros() as usize;
                let mut idx = self.heads[up_base(level) + s];
                let mut min = u64::MAX;
                while idx != NIL {
                    let n = &self.arena[idx as usize];
                    min = min.min(n.at);
                    idx = n.next;
                }
                debug_assert_ne!(min, u64::MAX, "slot is occupied");
                return Some(SimTime::from_nanos(min));
            }
        }
        None
    }

    /// The current simulation clock: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len() + self.batch.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (a cheap progress/complexity
    /// counter for benchmarks).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("now", &SimTime::from_nanos(self.now))
            .finish()
    }
}

/// Drives an [`EventHandler`] until a deadline or event exhaustion.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{EventHandler, EventQueue, Simulation, SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl EventHandler for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         if self.0 < 10 {
///             q.push(now + SimDuration::from_micros(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter(0));
/// sim.queue.push(SimTime::ZERO, ());
/// sim.run_until(SimTime::from_nanos(u64::MAX));
/// assert_eq!(sim.handler.0, 10);
/// ```
pub struct Simulation<H: EventHandler> {
    /// The model being simulated.
    pub handler: H,
    /// The future-event list.
    pub queue: EventQueue<H::Event>,
}

impl<H: EventHandler> Simulation<H> {
    /// Creates a simulation around `handler` with an empty event queue.
    pub fn new(handler: H) -> Self {
        Simulation {
            handler,
            queue: EventQueue::new(),
        }
    }

    /// Runs until the queue drains or the next event is strictly after
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some((now, ev)) = self.queue.pop_at_or_before(deadline) {
            self.handler.handle(now, ev, &mut self.queue);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "past-scheduling is a debug_assert; release builds clamp"
    )]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Ticker;
        impl EventHandler for Ticker {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
                q.push(now + SimDuration::from_micros(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker);
        sim.queue.push(SimTime::ZERO, ());
        let n = sim.run_until(SimTime::from_nanos(10_500));
        // Events at 0, 1us, ..., 10us inclusive = 11 events.
        assert_eq!(n, 11);
        assert_eq!(sim.queue.peek_time(), Some(SimTime::from_nanos(11_000)));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }

    #[test]
    fn push_at_current_instant_pops_after_pending_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 1);
        q.push(SimTime::from_nanos(5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Clock is now at 5; scheduling more work at 5 is legal and must
        // run after the already-pending event at 5.
        q.push(SimTime::from_nanos(5), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn push_at_current_instant_stays_behind_overflow_siblings() {
        // Far-future same-instant events are served straight from the
        // overflow heap; a push at that instant must sort behind the
        // not-yet-served siblings, not jump ahead of them.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(20_000_000_000_000);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t, 4);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_overflow_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the 2^44 ns wheel horizon.
        q.push(SimTime::from_nanos(20_000_000_000_000), "idle timer");
        q.push(SimTime::from_nanos(4_000_000_000), "rto"); // upper levels
        q.push(SimTime::from_nanos(30), "soon");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(30)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(30), "soon"));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4_000_000_000)));
        assert_eq!(
            q.pop().unwrap(),
            (SimTime::from_nanos(4_000_000_000), "rto")
        );
        assert_eq!(
            q.pop().unwrap(),
            (SimTime::from_nanos(20_000_000_000_000), "idle timer")
        );
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_pushes_preserve_order_across_cascades() {
        // Alternate pops with pushes that straddle level boundaries so
        // events must survive redistribution; order must stay (time, seq).
        let mut q = EventQueue::with_capacity(64);
        let mut expect = Vec::new();
        for i in 0u64..32 {
            let t = 1 + i * 97; // crosses several level-0/1 windows
            q.push(SimTime::from_nanos(t), (t, i));
            expect.push((t, i));
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn len_tracks_batch_wheel_and_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), ());
        q.push(SimTime::from_nanos(1_000), ());
        q.push(SimTime::from_nanos(20_000_000_000_000), ());
        assert_eq!(q.len(), 3);
        q.pop();
        q.push(SimTime::from_nanos(1), ()); // at the current instant
        assert_eq!(q.len(), 3);
        while q.pop().is_some() {}
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 4);
    }

    #[test]
    fn ordered_push_sorts_by_sender_key_among_ties() {
        // A cross-shard message is inserted late (after a local push at
        // the same target time) but carries the tie key of its logical
        // send at an earlier instant — it must pop first, where the
        // sequential run's push would have placed it.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "early handler");
        q.push(SimTime::from_nanos(20), "late handler");
        assert_eq!(q.pop().unwrap().1, "early handler");
        let sent_at_10 = q.current_tie_key();
        assert_eq!(q.pop().unwrap().1, "late handler");
        q.push(SimTime::from_nanos(100), "local push at 20");
        q.push_ordered(
            SimTime::from_nanos(100),
            sent_at_10,
            1,
            "message sent at 10",
        );
        assert_eq!(q.pop().unwrap().1, "message sent at 10");
        assert_eq!(q.pop().unwrap().1, "local push at 20");
        assert!(q.is_empty());
        // The keys differ (send instants 10 vs 20), so the tie was
        // resolved, not ambiguous.
        assert_eq!(q.ambiguous_ties(), 0);
    }

    #[test]
    fn ordered_push_reaches_the_overflow_heap() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "tick");
        q.push(SimTime::from_nanos(20), "tock");
        assert_eq!(q.pop().unwrap().1, "tick");
        let key = q.current_tie_key();
        assert_eq!(q.pop().unwrap().1, "tock");
        // Beyond the 2^44 ns wheel horizon: both land in overflow, and
        // the explicit key still decides the tie.
        let far = SimTime::from_nanos(30_000_000_000_000);
        q.push(far, "plain push at 20");
        q.push_ordered(far, key, 1, "keyed at 10");
        assert_eq!(q.pop().unwrap().1, "keyed at 10");
        assert_eq!(q.pop().unwrap().1, "plain push at 20");
    }

    #[test]
    fn full_key_collisions_across_streams_count_as_ambiguous() {
        // Two messages from different shards whose causal chains agree
        // through the whole key window: no bounded key can order them the
        // way the sequential run did, so the detector must flag the pair.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 0);
        q.pop();
        let key = q.current_tie_key();
        q.push_ordered(SimTime::from_nanos(50), key, 1, 100);
        q.push_ordered(SimTime::from_nanos(50), key, 2, 200);
        // Barrier insertion order (source 1 before 2) is all that orders
        // them; both still pop, and the collision is counted once.
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.pop().unwrap().1, 200);
        assert_eq!(q.ambiguous_ties(), 1);
    }

    #[test]
    fn full_key_collision_against_local_push_is_ambiguous() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 0);
        q.pop();
        // A local push and a message captured at the same handling point
        // carry identical keys; their relative sequential order is lost.
        let key = q.current_tie_key();
        q.push(SimTime::from_nanos(50), 1);
        q.push_ordered(SimTime::from_nanos(50), key, 3, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.ambiguous_ties(), 1);
    }

    #[test]
    fn same_stream_key_collisions_stay_unambiguous() {
        // One sender emitting two same-key messages: barrier order is the
        // sender's emission order, which is exactly the sequential order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 0);
        q.pop();
        let key = q.current_tie_key();
        q.push_ordered(SimTime::from_nanos(50), key, 4, 100);
        q.push_ordered(SimTime::from_nanos(50), key, 4, 200);
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.pop().unwrap().1, 200);
        assert_eq!(q.ambiguous_ties(), 0);
    }

    #[test]
    fn arena_nodes_are_recycled() {
        // Steady-state hold pattern: the arena's high-water mark must not
        // grow past the concurrent-event count.
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.push(SimTime::from_nanos(1 + i), i);
        }
        for _ in 0..10_000 {
            let (at, e) = q.pop().unwrap();
            q.push(at + SimDuration::from_nanos(8), e);
        }
        assert_eq!(q.len(), 8);
        assert!(q.arena.len() <= 16, "arena grew to {}", q.arena.len());
    }
}
