//! The reference binary-heap future-event list.
//!
//! This is the PR-1 `EventQueue` implementation, kept as the oracle for
//! differential testing: [`HeapQueue`] pops events in exactly the
//! (time, seq) order the simulator contract demands, with none of the
//! timing-wheel machinery. The production [`crate::EventQueue`] must
//! pop the *identical* sequence on any workload — see
//! `tests/fel_differential.rs` and the `microbench` determinism
//! cross-check.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::{TieKey, KEY_DEPTH};
use crate::SimTime;

pub(crate) struct Scheduled<E> {
    pub(crate) at: SimTime,
    /// Tie-break key before `seq`: the push instant plus a window of
    /// ancestor push instants (nondecreasing in `seq` for plain pushes,
    /// so it never reorders a sequential run; a sharded run supplies a
    /// sender-side key for cross-LP message insertion, see
    /// `EventQueue::push_ordered`).
    pub(crate) key: TieKey,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, key, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The straightforward deterministic FEL: a binary heap ordered by
/// (time, insertion seq). Same pop contract as [`crate::EventQueue`];
/// `O(log n)` per operation instead of amortized `O(1)`.
#[derive(Default)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    /// Tie key of the event most recently popped; pushes made while
    /// handling it derive their keys from it (same discipline as
    /// `EventQueue`, so the two stay pop-for-pop identical).
    cur_key: TieKey,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            cur_key: TieKey::default(),
        }
    }

    /// Schedules `event` to occur at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when scheduling into the past.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut key = [0; KEY_DEPTH];
        key[0] = self.now.as_nanos();
        key[1..].copy_from_slice(&self.cur_key.0[..KEY_DEPTH - 1]);
        self.heap.push(Scheduled {
            at,
            key: TieKey(key),
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        self.cur_key = s.key;
        Some((s.at, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// The timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for HeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = HeapQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(30)));
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_count(), 3);
    }
}
