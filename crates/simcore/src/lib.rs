#![warn(missing_docs)]

//! Deterministic discrete-event simulation core.
//!
//! This crate provides the building blocks the packet-level network
//! simulator ([`pmsb-netsim`]) is written on top of:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulation time,
//! * [`EventQueue`] — a deterministic future-event list (ties broken by
//!   insertion order, so identical seeds give identical runs),
//! * [`Simulation`] — a minimal driver that pops events and hands them to an
//!   [`EventHandler`],
//! * [`lp`] — conservative parallel execution: [`LogicalProcess`] shards
//!   driven in deterministic lookahead windows by [`run_conservative`],
//! * [`rng`] — seeded random-number helpers (exponential, empirical CDFs).
//!
//! # Example
//!
//! ```
//! use pmsb_simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_micros(5), "later");
//! q.push(SimTime::ZERO + SimDuration::from_micros(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t.as_nanos(), 1_000);
//! ```
//!
//! [`pmsb-netsim`]: https://example.invalid/pmsb

pub mod event;
pub mod heap_fel;
pub mod lp;
pub mod rng;
pub mod time;

pub use event::{EventQueue, Simulation, TieKey};
pub use heap_fel::HeapQueue;
pub use lp::{
    last_run_profile, run_conservative, run_conservative_matrix, LogicalProcess, LookaheadMatrix,
    LpMessage, LpRunProfile,
};
pub use time::{SimDuration, SimTime};

/// Types implementing this trait drive a [`Simulation`]: every popped event
/// is handed to [`EventHandler::handle`] together with the current time and
/// the queue so the handler can schedule follow-up events.
pub trait EventHandler {
    /// The event type processed by this handler.
    type Event;

    /// Process one event occurring at `now`, scheduling any follow-ups on
    /// `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}
