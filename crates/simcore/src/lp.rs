//! Conservative parallel simulation: logical processes under
//! barrier-synchronized per-LP lookahead horizons.
//!
//! A simulation is sharded into *logical processes* (LPs), each owning a
//! disjoint slice of model state and its own future-event list. Every link
//! between LPs has a non-zero minimum latency — the **lookahead** — which
//! bounds how far one LP's present can influence another LP's future:
//! an event executed at time `t` on LP `j` can only schedule work on LP
//! `i` at `t + lookahead(j→i)` or later. [`run_conservative_matrix`]
//! exploits this with a neighbor-aware synchronous conservative protocol:
//!
//! 1. at each barrier, compute every LP's *effective time* `eff(j)` — the
//!    earlier of its next local event and its earliest undelivered
//!    incoming message,
//! 2. give each LP its own horizon
//!    `h(i) = min over LPs j of eff(j) + lookahead(j→i)`, where
//!    `lookahead` is the min-plus transitive closure of the direct
//!    inter-LP delays ([`LookaheadMatrix`]) — no chain of messages
//!    through any intermediary can reach `i` sooner. The `j = i` term
//!    uses the diagonal, which the closure fills with the minimum
//!    *echo cycle* `i → … → i`: an LP's own emissions can wake an idle
//!    peer whose reply lands back on `i`, so even with every peer idle
//!    `i` may only run `cycle(i)` ahead of its own clock,
//! 3. let every LP process its local events with `time < h(i)` in
//!    parallel — no event in that window can be affected by a message
//!    not yet delivered,
//! 4. swap the per-(src,dst) message lanes at the barrier and let each
//!    destination merge its incoming messages in deterministic
//!    `(time, source LP, emission order)` order,
//! 5. repeat until no events or messages remain (or a deadline passes).
//!
//! Per-LP horizons replace the older single global window
//! (`global_min + min_delay` for everyone): an LP two hops away in the
//! LP graph is held back by `2×` the per-hop delay, an idle LP holds
//! nobody back at all, and an LP with no inbound path runs straight to
//! the deadline. The messages an LP emits inside its window still cannot
//! violate any peer's horizon: a message from `j` departs at
//! `t ≥ eff(j)` and arrives at `t + d ≥ eff(j) + lookahead(j→i) ≥ h(i)`.
//!
//! Because the horizons and the message delivery order are functions of
//! the event schedule alone — never of thread timing — the execution is
//! deterministic for any worker count.
//!
//! Cross-LP messages travel through preallocated per-(src,dst) *lanes*,
//! double-buffered so the writer (source worker) and reader (destination
//! worker) never touch the same `Vec`: the source appends to the fresh
//! buffer during its window, the coordinator swaps fresh/ready at the
//! barrier, and the destination drains the ready buffer at the start of
//! its next window. After warm-up no window allocates, and no message is
//! routed through a shared coordinator-side merge.
//!
//! Windows are short (a lookahead of microseconds at nanosecond
//! resolution means hundreds of thousands of epochs per simulated
//! second), so when every participant can own a core the barrier is a
//! sense-reversing spin barrier rather than a futex: parking and waking
//! threads at that rate would cost more than the windows themselves. On
//! an oversubscribed machine the opposite holds — a spinning waiter
//! burns the running thread's whole scheduling quantum per crossing —
//! so [`WindowBarrier`] picks parking instead (wall clock only; the
//! schedule never depends on the barrier flavor).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::{SimDuration, SimTime};

/// A timestamped event crossing from one logical process to another.
pub struct LpMessage<M> {
    /// Arrival time at the destination (already includes link latency);
    /// guaranteed `>=` the destination's horizon by the lookahead
    /// matrix, so the destination has not yet simulated past it.
    pub at: SimTime,
    /// Destination LP index.
    pub dst: usize,
    /// The model-level event to schedule at `at` on the destination.
    pub payload: M,
}

/// One shard of a simulation, driven by [`run_conservative`].
pub trait LogicalProcess: Send {
    /// Cross-LP event payload.
    type Message: Send;

    /// The earliest pending local event time, or `None` when this LP has
    /// nothing scheduled. Called only at barriers (never concurrently
    /// with `run_window`).
    fn next_time(&self) -> Option<SimTime>;

    /// Processes every local event with `time < horizon`, appending any
    /// events destined for other LPs to `outbox` (in emission order)
    /// instead of executing them.
    fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<Self::Message>>);

    /// Schedules a message from another LP into the local future-event
    /// list. Calls arrive in deterministic `(at, source LP, emission
    /// order)` sequence, which makes FEL tie-breaking reproducible;
    /// `src` is the sending LP's index (e.g. for use as a
    /// `push_ordered` stream id).
    fn receive(&mut self, at: SimTime, src: u32, payload: Self::Message);
}

/// Pairwise minimum influence delays between LPs: `get(j, i)` bounds how
/// soon anything LP `j` does can affect LP `i`, over any chain of
/// messages (the constructor takes the min-plus transitive closure of
/// the direct link delays). The diagonal `get(i, i)` is the minimum
/// *echo cycle* — the soonest an LP's own emission can loop back to it
/// through its peers — which bounds how far an LP may run ahead even
/// when every peer is idle. [`NEVER`](Self::NEVER) marks pairs with no
/// path at all — such a peer never constrains the horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadMatrix {
    k: usize,
    /// Row-major `k × k`: `d[src * k + dst]`.
    d: Vec<u64>,
}

impl LookaheadMatrix {
    /// "No path from src to dst": the pair never constrains a horizon.
    pub const NEVER: u64 = u64::MAX;

    /// Every ordered pair of distinct LPs at the same `lookahead` — the
    /// classic single-window protocol's assumption as a matrix. The
    /// diagonal is the two-hop echo `i → j → i` (or [`NEVER`](Self::NEVER)
    /// when there is no other LP to echo through).
    pub fn uniform(k: usize, lookahead: SimDuration) -> Self {
        let la = lookahead.as_nanos();
        let mut d = vec![la; k * k];
        let echo = if k >= 2 {
            la.saturating_mul(2)
        } else {
            Self::NEVER
        };
        for i in 0..k {
            d[i * k + i] = echo;
        }
        LookaheadMatrix { k, d }
    }

    /// Builds the closure of a direct-delay matrix (row-major `k × k`;
    /// `NEVER` where no direct link exists, including on the diagonal).
    /// Floyd–Warshall in min-plus: after this, `get(j, i)` is the
    /// cheapest multi-hop influence path, so per-LP horizons stay safe
    /// against message chains through intermediaries. The diagonal comes
    /// out as each LP's minimum echo cycle (all delays are positive, so
    /// the closure never produces a zero self-loop).
    pub fn from_direct(k: usize, mut d: Vec<u64>) -> Self {
        assert_eq!(d.len(), k * k, "direct delay matrix must be k x k");
        for via in 0..k {
            for s in 0..k {
                let first = d[s * k + via];
                if first == Self::NEVER {
                    continue;
                }
                for t in 0..k {
                    let second = d[via * k + t];
                    if second == Self::NEVER {
                        continue;
                    }
                    let through = first.saturating_add(second);
                    if through < d[s * k + t] {
                        d[s * k + t] = through;
                    }
                }
            }
        }
        LookaheadMatrix { k, d }
    }

    /// Number of LPs the matrix covers.
    pub fn len(&self) -> usize {
        self.k
    }

    /// `true` when the matrix covers zero LPs.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The influence delay from LP `src` to LP `dst` — the minimum echo
    /// cycle when `src == dst`, [`NEVER`](Self::NEVER) for unreachable
    /// pairs.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.d[src * self.k + dst]
    }

    /// The smallest off-diagonal entry, or `None` when no LP can reach
    /// any other (every pair is [`NEVER`](Self::NEVER), or `k < 2`).
    pub fn min_lookahead(&self) -> Option<u64> {
        let mut min = None;
        for s in 0..self.k {
            for t in 0..self.k {
                if s != t && self.d[s * self.k + t] != Self::NEVER {
                    let d = self.d[s * self.k + t];
                    min = Some(min.map_or(d, |m: u64| m.min(d)));
                }
            }
        }
        min
    }
}

/// A sense-reversing spin barrier for `total` participants.
///
/// `std::sync::Barrier` parks threads; at the epoch rates of
/// [`run_conservative`] the syscall round-trips dominate, so waiters spin
/// (with a yield once per few thousand iterations to stay polite on
/// oversubscribed machines).
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
                spins += 1;
                if spins.is_multiple_of(4096) {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The window barrier, picked once per run: spin when every participant
/// can own a core (a barrier crossing is then tens of nanoseconds), park
/// on a futex (`std::sync::Barrier`) when the machine is oversubscribed
/// — spinning there burns whole scheduling quanta per crossing, which is
/// catastrophic at hundreds of thousands of windows per simulated
/// second. The choice affects wall clock only, never the schedule.
enum WindowBarrier {
    Spin(SpinBarrier),
    Park(std::sync::Barrier),
}

impl WindowBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if total <= cores {
            WindowBarrier::Spin(SpinBarrier::new(total))
        } else {
            WindowBarrier::Park(std::sync::Barrier::new(total))
        }
    }

    fn wait(&self) {
        match self {
            WindowBarrier::Spin(b) => b.wait(),
            WindowBarrier::Park(b) => {
                b.wait();
            }
        }
    }
}

/// Sentinel for "no pending event" in the published-time atomics.
const IDLE: u64 = u64::MAX;

/// Wall-clock profile of the last conservative run on this process:
/// window count, cross-LP messages delivered, the coordinator's
/// cumulative barrier-wait time, the run's total wall clock, and the
/// per-LP split of worker time into busy (message merge + window
/// execution) and blocked (barrier waits). Counters are accumulated in
/// thread-locals and published once at run exit; they have no effect on
/// the schedule — they exist so the bench harness can report how the
/// conservative protocol spends its time (windows per run, messages per
/// window, barrier overhead, LP load imbalance).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LpRunProfile {
    /// Conservative windows executed.
    pub windows: u64,
    /// Cross-LP messages delivered across all windows.
    pub messages: u64,
    /// Wall-clock nanoseconds the coordinator spent waiting on the
    /// window barriers (includes the workers' window execution time, so
    /// this is coordinator idle time, not pure barrier overhead).
    pub barrier_wait_nanos: u64,
    /// Wall-clock nanoseconds of the whole run (spawn to join).
    pub total_wall_nanos: u64,
    /// Per-LP wall clock spent merging messages and executing windows.
    pub per_lp_busy_nanos: Vec<u64>,
    /// Per-LP wall clock spent waiting at the window barriers.
    pub per_lp_blocked_nanos: Vec<u64>,
    /// Per-LP count of cross-LP messages received.
    pub per_lp_messages: Vec<u64>,
}

impl LpRunProfile {
    /// Messages delivered per window (0 when no window ran).
    pub fn msgs_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.messages as f64 / self.windows as f64
        }
    }

    /// Share of total worker time spent parked at window barriers
    /// rather than merging messages or executing events —
    /// `Σ blocked / Σ (busy + blocked)` over the LPs (0 when nothing
    /// was recorded). This is the protocol-overhead measure from the
    /// workers' perspective; the coordinator-side `barrier_wait_nanos`
    /// is not a useful share on its own, because the coordinator does
    /// almost nothing between barriers (lane swaps are pointer swaps)
    /// and so is parked for nearly the whole run by design. Note that
    /// on an oversubscribed machine a parked worker is often just
    /// waiting for a peer to get scheduled, so this share bounds the
    /// protocol overhead from above there.
    pub fn barrier_wait_share(&self) -> f64 {
        let blocked: u64 = self.per_lp_blocked_nanos.iter().sum();
        let busy: u64 = self.per_lp_busy_nanos.iter().sum();
        if blocked + busy == 0 {
            0.0
        } else {
            blocked as f64 / (blocked + busy) as f64
        }
    }

    /// Max-over-mean of the per-LP busy time: 1.0 is a perfectly
    /// balanced partition, higher means straggler LPs gate the barrier.
    pub fn lp_imbalance(&self) -> f64 {
        let n = self.per_lp_busy_nanos.len();
        if n == 0 {
            return 1.0;
        }
        let sum: u64 = self.per_lp_busy_nanos.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let max = *self.per_lp_busy_nanos.iter().max().expect("nonempty");
        max as f64 * n as f64 / sum as f64
    }
}

static PROFILE: Mutex<LpRunProfile> = Mutex::new(LpRunProfile {
    windows: 0,
    messages: 0,
    barrier_wait_nanos: 0,
    total_wall_nanos: 0,
    per_lp_busy_nanos: Vec::new(),
    per_lp_blocked_nanos: Vec::new(),
    per_lp_messages: Vec::new(),
});

/// The profile of the most recent [`run_conservative`] /
/// [`run_conservative_matrix`] call. Process-wide and overwritten by
/// every run (concurrent runs interleave), so read it immediately after
/// the run of interest.
pub fn last_run_profile() -> LpRunProfile {
    PROFILE.lock().expect("profile lock").clone()
}

/// One double-buffered message lane from a fixed source LP to a fixed
/// destination LP. The source worker appends to `fresh` during its
/// window; the coordinator swaps `fresh`/`ready` at the barrier; the
/// destination worker drains `ready` at the start of the next window.
/// The barrier protocol alternates exclusive access, so the mutexes are
/// never contended — they exist to keep the sharing safe. Both buffers
/// keep their capacity across windows, so a warmed-up run allocates
/// nothing per window.
struct Lane<M> {
    /// Messages appended by the source worker this window, in emission
    /// order (`(arrival nanos, payload)`).
    fresh: Mutex<Vec<(u64, M)>>,
    /// Last window's messages, awaiting the destination worker.
    ready: Mutex<Vec<(u64, M)>>,
    /// Earliest arrival among `fresh` (IDLE when empty); written by the
    /// source worker after its window, consumed (and reset) by the
    /// coordinator when it swaps the buffers.
    min_at: AtomicU64,
    /// Set by the coordinator on swap-in, cleared by the destination on
    /// drain — lets the destination skip locking empty lanes.
    ready_nonempty: AtomicBool,
}

/// Per-worker profile slots, published once when the worker exits.
#[derive(Default)]
struct WorkerStats {
    busy_nanos: AtomicU64,
    blocked_nanos: AtomicU64,
    messages: AtomicU64,
}

/// Runs `lps` under the uniform-lookahead conservative protocol — every
/// pair of LPs at the same minimum latency. Equivalent to
/// [`run_conservative_matrix`] with [`LookaheadMatrix::uniform`];
/// `lookahead` must be positive.
pub fn run_conservative<L: LogicalProcess>(
    lps: &mut [L],
    lookahead: SimDuration,
    deadline: SimTime,
) {
    assert!(
        lookahead.as_nanos() > 0,
        "conservative windows need a positive lookahead"
    );
    let matrix = LookaheadMatrix::uniform(lps.len(), lookahead);
    run_conservative_matrix(lps, &matrix, deadline);
}

/// Runs `lps` to completion (or until every pending event lies past
/// `deadline`) under the neighbor-lookahead conservative protocol, one
/// worker thread per LP plus the calling thread as coordinator. Threads
/// are spawned once and live for the whole run (`std::thread::scope`).
///
/// Every off-diagonal `lookahead` entry must be positive or
/// [`LookaheadMatrix::NEVER`]: a zero entry would make its destination's
/// windows empty forever.
///
/// The schedule executed is a pure function of the LPs' initial state —
/// worker interleaving cannot affect it — so a run with any `lps.len()`
/// partitioning of the same model is reproducible.
pub fn run_conservative_matrix<L: LogicalProcess>(
    lps: &mut [L],
    lookahead: &LookaheadMatrix,
    deadline: SimTime,
) {
    let k = lps.len();
    assert_eq!(lookahead.len(), k, "lookahead matrix must cover every LP");
    if k == 0 {
        return;
    }
    for s in 0..k {
        for t in 0..k {
            assert!(
                s == t || lookahead.get(s, t) > 0,
                "conservative windows need positive lookahead between LPs {s} and {t}"
            );
        }
    }
    let next_times: Vec<AtomicU64> = lps
        .iter()
        .map(|lp| AtomicU64::new(lp.next_time().map_or(IDLE, SimTime::as_nanos)))
        .collect();
    let horizons: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(IDLE)).collect();
    let lanes: Vec<Lane<L::Message>> = (0..k * k)
        .map(|_| Lane {
            fresh: Mutex::new(Vec::new()),
            ready: Mutex::new(Vec::new()),
            min_at: AtomicU64::new(IDLE),
            ready_nonempty: AtomicBool::new(false),
        })
        .collect();
    let stats: Vec<WorkerStats> = (0..k).map(|_| WorkerStats::default()).collect();
    // Participants: k workers + the coordinator.
    let barrier = WindowBarrier::new(k + 1);
    // Coordinator-side profile counters (wall clock only; published to
    // the process-wide profile after the run).
    let mut prof_windows = 0u64;
    let mut prof_barrier_nanos = 0u64;
    let run_start = std::time::Instant::now();
    let deadline_ns = deadline.as_nanos();
    // Events exactly at the deadline must run (`time < cap` with
    // `cap = deadline + 1`), and the cap must stay below the IDLE
    // sentinel that tells workers to terminate.
    let cap_limit = deadline_ns.saturating_add(1).min(IDLE - 1);

    std::thread::scope(|scope| {
        for (i, lp) in lps.iter_mut().enumerate() {
            let next_times = &next_times;
            let horizons = &horizons;
            let lanes = &lanes;
            let stats = &stats;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut outbox: Vec<LpMessage<L::Message>> = Vec::new();
                // Merge scratch: (at, src, emission idx, payload).
                let mut inbox: Vec<(u64, u32, u32, L::Message)> = Vec::new();
                let mut out_min: Vec<u64> = vec![IDLE; k];
                let mut busy = 0u64;
                let mut blocked = 0u64;
                let mut delivered = 0u64;
                loop {
                    // (1) The coordinator published the horizons and
                    // swapped the lanes.
                    let parked = std::time::Instant::now();
                    barrier.wait();
                    blocked += parked.elapsed().as_nanos() as u64;
                    let cap = horizons[i].load(Ordering::Acquire);
                    if cap == IDLE {
                        break;
                    }
                    let started = std::time::Instant::now();
                    // Merge this window's incoming messages in
                    // deterministic (time, source LP, emission order).
                    for src in 0..k {
                        let lane = &lanes[src * k + i];
                        if lane.ready_nonempty.swap(false, Ordering::AcqRel) {
                            let mut ready = lane.ready.lock().expect("ready lock");
                            for (idx, (at, payload)) in ready.drain(..).enumerate() {
                                inbox.push((at, src as u32, idx as u32, payload));
                            }
                        }
                    }
                    inbox.sort_unstable_by_key(|&(at, src, idx, _)| (at, src, idx));
                    delivered += inbox.len() as u64;
                    for (at, src, _, payload) in inbox.drain(..) {
                        lp.receive(SimTime::from_nanos(at), src, payload);
                    }
                    lp.run_window(SimTime::from_nanos(cap), &mut outbox);
                    // Distribute this window's sends into the fresh
                    // lanes, publishing each lane's earliest arrival.
                    for msg in outbox.drain(..) {
                        let at = msg.at.as_nanos();
                        let lane = &lanes[i * k + msg.dst];
                        lane.fresh
                            .lock()
                            .expect("fresh lock")
                            .push((at, msg.payload));
                        if at < out_min[msg.dst] {
                            out_min[msg.dst] = at;
                        }
                    }
                    for (dst, slot) in out_min.iter_mut().enumerate() {
                        if *slot != IDLE {
                            lanes[i * k + dst].min_at.store(*slot, Ordering::Release);
                            *slot = IDLE;
                        }
                    }
                    next_times[i].store(
                        lp.next_time().map_or(IDLE, SimTime::as_nanos),
                        Ordering::Release,
                    );
                    busy += started.elapsed().as_nanos() as u64;
                    // (2) Window complete; hand control to the coordinator.
                    let parked = std::time::Instant::now();
                    barrier.wait();
                    blocked += parked.elapsed().as_nanos() as u64;
                }
                stats[i].busy_nanos.store(busy, Ordering::Release);
                stats[i].blocked_nanos.store(blocked, Ordering::Release);
                stats[i].messages.store(delivered, Ordering::Release);
            });
        }

        // Coordinator: swap the lanes, derive per-LP horizons, repeat.
        let mut eff = vec![IDLE; k];
        loop {
            // Effective time per LP: its next local event or its
            // earliest undelivered message, whichever is sooner.
            for (slot, next) in eff.iter_mut().zip(&next_times) {
                *slot = next.load(Ordering::Acquire);
            }
            for src in 0..k {
                for dst in 0..k {
                    let lane = &lanes[src * k + dst];
                    let pending = lane.min_at.swap(IDLE, Ordering::AcqRel);
                    if pending != IDLE {
                        {
                            let mut fresh = lane.fresh.lock().expect("fresh lock");
                            let mut ready = lane.ready.lock().expect("ready lock");
                            std::mem::swap(&mut *fresh, &mut *ready);
                        }
                        lane.ready_nonempty.store(true, Ordering::Release);
                        if pending < eff[dst] {
                            eff[dst] = pending;
                        }
                    }
                }
            }
            let global_min = eff.iter().copied().min().unwrap_or(IDLE);
            if global_min == IDLE || global_min > deadline_ns {
                for h in &horizons {
                    h.store(IDLE, Ordering::Release);
                }
                barrier.wait(); // release workers into termination
                break;
            }
            // Per-LP horizon: the earliest instant anyone could still
            // influence this LP — including itself, via the diagonal
            // echo-cycle term (an emission can wake an idle peer whose
            // reply lands back here). Idle and unreachable peers impose
            // no bound; with none at all the LP runs straight to the
            // deadline.
            for (i, h) in horizons.iter().enumerate() {
                let mut cap = cap_limit;
                for (j, &t) in eff.iter().enumerate() {
                    if t == IDLE {
                        continue;
                    }
                    let d = lookahead.get(j, i);
                    if d != LookaheadMatrix::NEVER {
                        cap = cap.min(t.saturating_add(d));
                    }
                }
                h.store(cap, Ordering::Release);
            }
            prof_windows += 1;
            let waited = std::time::Instant::now();
            barrier.wait(); // (1) start the window
            barrier.wait(); // (2) wait for every worker to finish it
            prof_barrier_nanos += waited.elapsed().as_nanos() as u64;
        }
    });
    let profile = LpRunProfile {
        windows: prof_windows,
        messages: stats
            .iter()
            .map(|s| s.messages.load(Ordering::Acquire))
            .sum(),
        barrier_wait_nanos: prof_barrier_nanos,
        total_wall_nanos: run_start.elapsed().as_nanos() as u64,
        per_lp_busy_nanos: stats
            .iter()
            .map(|s| s.busy_nanos.load(Ordering::Acquire))
            .collect(),
        per_lp_blocked_nanos: stats
            .iter()
            .map(|s| s.blocked_nanos.load(Ordering::Acquire))
            .collect(),
        per_lp_messages: stats
            .iter()
            .map(|s| s.messages.load(Ordering::Acquire))
            .collect(),
    };
    *PROFILE.lock().expect("profile lock") = profile;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    /// A token-passing LP ring: each LP holds a FEL of `(time, token)`
    /// events; processing an event at `t` forwards `token - 1` to the
    /// next LP at `t + delay` until the token is spent. Mirrors the
    /// structure (FEL + cross-LP sends) of the network World shards.
    struct RingLp {
        id: usize,
        n: usize,
        delay: SimDuration,
        fel: EventQueue<u64>,
        log: Vec<(u64, u64)>,
    }

    impl LogicalProcess for RingLp {
        type Message = u64;

        fn next_time(&self) -> Option<SimTime> {
            self.fel.peek_time()
        }

        fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<u64>>) {
            while self
                .fel
                .peek_time()
                .is_some_and(|t| t.as_nanos() < horizon.as_nanos())
            {
                let (now, token) = self.fel.pop().expect("peeked event pops");
                self.log.push((now.as_nanos(), token));
                if token > 0 {
                    outbox.push(LpMessage {
                        at: now + self.delay,
                        dst: (self.id + 1) % self.n,
                        payload: token - 1,
                    });
                }
            }
        }

        fn receive(&mut self, at: SimTime, _src: u32, payload: u64) {
            self.fel.push(at, payload);
        }
    }

    fn ring(n: usize, delay_ns: u64, tokens: u64) -> Vec<RingLp> {
        let mut lps: Vec<RingLp> = (0..n)
            .map(|id| RingLp {
                id,
                n,
                delay: SimDuration::from_nanos(delay_ns),
                fel: EventQueue::new(),
                log: Vec::new(),
            })
            .collect();
        lps[0].fel.push(SimTime::from_nanos(1), tokens);
        lps
    }

    #[test]
    fn ring_matches_sequential_reference() {
        let delay = 7;
        let tokens = 100;
        for n in [1, 2, 3, 4] {
            let mut lps = ring(n, delay, tokens);
            run_conservative(
                &mut lps,
                SimDuration::from_nanos(delay),
                SimTime::from_nanos(u64::MAX - 1),
            );
            // Sequential reference: token t is processed by LP
            // (tokens - t) % n at time 1 + (tokens - t) * delay.
            let mut expect: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
            for step in 0..=tokens {
                expect[(step as usize) % n].push((1 + step * delay, tokens - step));
            }
            for (lp, want) in lps.iter().zip(&expect) {
                assert_eq!(&lp.log, want, "n={n}");
            }
        }
    }

    #[test]
    fn ring_matches_under_an_asymmetric_matrix() {
        // A 3-LP ring where the declared pair delays differ (each >= the
        // true hop delay, so the protocol stays conservative): the
        // schedule must still match the sequential reference.
        let delay = 7;
        let tokens = 60;
        let n = 3;
        let mut lps = ring(n, delay, tokens);
        let mut direct = vec![LookaheadMatrix::NEVER; n * n];
        // Ring topology: i sends only to (i + 1) % n, at the hop delay.
        for i in 0..n {
            direct[i * n + (i + 1) % n] = delay;
        }
        let matrix = LookaheadMatrix::from_direct(n, direct);
        // Closure: two hops around the ring cost 2 * delay, and the
        // echo cycle back to yourself is the full loop.
        assert_eq!(matrix.get(0, 1), delay);
        assert_eq!(matrix.get(0, 2), 2 * delay);
        assert_eq!(matrix.get(1, 0), 2 * delay);
        assert_eq!(matrix.get(0, 0), 3 * delay);
        run_conservative_matrix(&mut lps, &matrix, SimTime::from_nanos(u64::MAX - 1));
        let mut expect: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for step in 0..=tokens {
            expect[(step as usize) % n].push((1 + step * delay, tokens - step));
        }
        for (lp, want) in lps.iter().zip(&expect) {
            assert_eq!(&lp.log, want);
        }
    }

    #[test]
    fn matrix_closure_and_min_lookahead() {
        // 0 -> 1 at 5, 1 -> 2 at 3, nothing else: the closure fills
        // 0 -> 2 at 8 and leaves every reverse pair unreachable.
        let n = 3;
        let mut direct = vec![LookaheadMatrix::NEVER; n * n];
        direct[1] = 5; // 0 -> 1
        direct[n + 2] = 3; // 1 -> 2
        let m = LookaheadMatrix::from_direct(n, direct);
        assert_eq!(m.get(0, 1), 5);
        assert_eq!(m.get(1, 2), 3);
        assert_eq!(m.get(0, 2), 8);
        assert_eq!(m.get(2, 0), LookaheadMatrix::NEVER);
        assert_eq!(m.get(1, 0), LookaheadMatrix::NEVER);
        // A DAG has no echo cycles: nothing an LP emits can come back.
        assert_eq!(m.get(0, 0), LookaheadMatrix::NEVER);
        assert_eq!(m.min_lookahead(), Some(3));
        let u = LookaheadMatrix::uniform(2, SimDuration::from_nanos(9));
        assert_eq!(u.min_lookahead(), Some(9));
        assert_eq!(u.get(0, 0), 18); // i -> j -> i echo
        assert_eq!(
            LookaheadMatrix::uniform(1, SimDuration::from_nanos(9)).min_lookahead(),
            None
        );
    }

    #[test]
    fn deadline_stops_the_run() {
        let mut lps = ring(2, 10, 1_000);
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(10),
            SimTime::from_nanos(501),
        );
        // Events at 1, 11, ..., 501 have fired: 51 of them, alternating
        // between the two LPs starting at LP 0.
        let fired: usize = lps.iter().map(|lp| lp.log.len()).sum();
        assert_eq!(fired, 51);
        assert!(lps.iter().flat_map(|lp| &lp.log).all(|&(t, _)| t <= 501));
    }

    #[test]
    fn profile_counts_windows_and_messages() {
        let tokens = 50;
        let mut lps = ring(2, 10, tokens);
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(10),
            SimTime::from_nanos(u64::MAX - 1),
        );
        let p = last_run_profile();
        // Every token hop is one cross-LP message, and the hops
        // alternate between the LPs, so each needs its own window.
        assert_eq!(p.messages, tokens);
        assert!(
            p.windows >= tokens && p.windows <= tokens + 2,
            "windows {}",
            p.windows
        );
        // Per-LP counters cover both LPs and sum to the totals.
        assert_eq!(p.per_lp_messages.len(), 2);
        assert_eq!(p.per_lp_messages.iter().sum::<u64>(), p.messages);
        assert_eq!(p.per_lp_busy_nanos.len(), 2);
        assert_eq!(p.per_lp_blocked_nanos.len(), 2);
        assert!(p.total_wall_nanos > 0);
    }

    #[test]
    fn idle_peers_do_not_throttle_windows() {
        // A 4-LP ring passing a single token: under per-LP horizons the
        // two LPs that are never "next" stay unconstraining, and the
        // token's holder always gets a horizon past its event — one
        // window per hop, not one window per lookahead interval.
        let tokens = 40;
        let mut lps = ring(4, 10, tokens);
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(10),
            SimTime::from_nanos(u64::MAX - 1),
        );
        let p = last_run_profile();
        assert!(
            p.windows <= tokens + 2,
            "per-LP horizons should need ~one window per hop, got {}",
            p.windows
        );
    }

    #[test]
    fn empty_lp_set_is_a_noop() {
        let mut lps: Vec<RingLp> = Vec::new();
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(1),
            SimTime::from_nanos(100),
        );
    }

    #[test]
    fn same_instant_messages_deliver_in_source_order() {
        // Two LPs both send to LP 2 at the same instant; delivery (and
        // therefore FEL tie-break) must order by source LP id.
        struct Sender {
            id: usize,
            fired: bool,
        }
        struct Collector(Vec<u64>);
        enum Lp {
            S(Sender),
            C(Collector),
        }
        impl LogicalProcess for Lp {
            type Message = u64;
            fn next_time(&self) -> Option<SimTime> {
                match self {
                    Lp::S(s) if !s.fired => Some(SimTime::from_nanos(1)),
                    _ => None,
                }
            }
            fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<u64>>) {
                if let Lp::S(s) = self {
                    if !s.fired && horizon.as_nanos() > 1 {
                        s.fired = true;
                        outbox.push(LpMessage {
                            at: SimTime::from_nanos(11),
                            dst: 2,
                            payload: s.id as u64,
                        });
                    }
                }
            }
            fn receive(&mut self, _at: SimTime, _src: u32, payload: u64) {
                if let Lp::C(c) = self {
                    c.0.push(payload);
                }
            }
        }
        // Run twice with the senders' spawn order fixed: order must be
        // by source id, not arrival timing.
        for _ in 0..16 {
            let mut lps = vec![
                Lp::S(Sender {
                    id: 0,
                    fired: false,
                }),
                Lp::S(Sender {
                    id: 1,
                    fired: false,
                }),
                Lp::C(Collector(Vec::new())),
            ];
            run_conservative(
                &mut lps,
                SimDuration::from_nanos(10),
                SimTime::from_nanos(100),
            );
            let Lp::C(c) = &lps[2] else {
                panic!("collector")
            };
            assert_eq!(c.0, vec![0, 1]);
        }
    }
}
