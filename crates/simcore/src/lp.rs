//! Conservative parallel simulation: logical processes under a
//! barrier-synchronized lookahead window loop.
//!
//! A simulation is sharded into *logical processes* (LPs), each owning a
//! disjoint slice of model state and its own future-event list. Every link
//! between LPs has a non-zero minimum latency — the **lookahead** — which
//! bounds how far one LP's present can influence another LP's future:
//! an event executed at time `t` can only schedule cross-LP work at
//! `t + lookahead` or later. [`run_conservative`] exploits this with the
//! classic synchronous conservative protocol:
//!
//! 1. compute the global minimum pending event time `m` across all LPs
//!    (including in-flight messages),
//! 2. let every LP process its local events with `time < m + lookahead`
//!    in parallel — no event in that window can be affected by a message
//!    not yet delivered,
//! 3. at the barrier, deliver the cross-LP messages the window produced
//!    in deterministic `(time, source LP, emission order)` order,
//! 4. repeat until no events or messages remain (or a deadline passes).
//!
//! Because the window bound and the message delivery order are functions
//! of the event schedule alone — never of thread timing — the execution
//! is deterministic for any worker count.
//!
//! Windows are short (a lookahead of microseconds at nanosecond
//! resolution means hundreds of thousands of epochs per simulated
//! second), so when every participant can own a core the barrier is a
//! sense-reversing spin barrier rather than a futex: parking and waking
//! threads at that rate would cost more than the windows themselves. On
//! an oversubscribed machine the opposite holds — a spinning waiter
//! burns the running thread's whole scheduling quantum per crossing —
//! so [`WindowBarrier`] picks parking instead (wall clock only; the
//! schedule never depends on the barrier flavor).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::{SimDuration, SimTime};

/// A timestamped event crossing from one logical process to another.
pub struct LpMessage<M> {
    /// Arrival time at the destination (already includes link latency);
    /// guaranteed `>=` the sending window's horizon by the lookahead
    /// argument, so the destination has not yet simulated past it.
    pub at: SimTime,
    /// Destination LP index.
    pub dst: usize,
    /// The model-level event to schedule at `at` on the destination.
    pub payload: M,
}

/// One shard of a simulation, driven by [`run_conservative`].
pub trait LogicalProcess: Send {
    /// Cross-LP event payload.
    type Message: Send;

    /// The earliest pending local event time, or `None` when this LP has
    /// nothing scheduled. Called only at barriers (never concurrently
    /// with `run_window`).
    fn next_time(&self) -> Option<SimTime>;

    /// Processes every local event with `time < horizon`, appending any
    /// events destined for other LPs to `outbox` (in emission order)
    /// instead of executing them.
    fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<Self::Message>>);

    /// Schedules a message from another LP into the local future-event
    /// list. Calls arrive in deterministic `(at, source LP, emission
    /// order)` sequence, which makes FEL tie-breaking reproducible;
    /// `src` is the sending LP's index (e.g. for use as a
    /// `push_ordered` stream id).
    fn receive(&mut self, at: SimTime, src: u32, payload: Self::Message);
}

/// A sense-reversing spin barrier for `total` participants.
///
/// `std::sync::Barrier` parks threads; at the epoch rates of
/// [`run_conservative`] the syscall round-trips dominate, so waiters spin
/// (with a yield once per few thousand iterations to stay polite on
/// oversubscribed machines).
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
                spins += 1;
                if spins.is_multiple_of(4096) {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The window barrier, picked once per run: spin when every participant
/// can own a core (a barrier crossing is then tens of nanoseconds), park
/// on a futex (`std::sync::Barrier`) when the machine is oversubscribed
/// — spinning there burns whole scheduling quanta per crossing, which is
/// catastrophic at hundreds of thousands of windows per simulated
/// second. The choice affects wall clock only, never the schedule.
enum WindowBarrier {
    Spin(SpinBarrier),
    Park(std::sync::Barrier),
}

impl WindowBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if total <= cores {
            WindowBarrier::Spin(SpinBarrier::new(total))
        } else {
            WindowBarrier::Park(std::sync::Barrier::new(total))
        }
    }

    fn wait(&self) {
        match self {
            WindowBarrier::Spin(b) => b.wait(),
            WindowBarrier::Park(b) => {
                b.wait();
            }
        }
    }
}

/// Sentinel for "no pending event" in the published-time atomics.
const IDLE: u64 = u64::MAX;

/// Wall-clock profile of the last [`run_conservative`] call on this
/// process: window count, cross-LP messages delivered, and the
/// coordinator's cumulative barrier-wait time. The counters are written
/// by the coordinator only (never the workers), cost two `Instant`
/// reads per window, and have no effect on the schedule — they exist so
/// the bench harness can report how the conservative protocol spends
/// its time (windows per run, events per window, barrier overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpRunProfile {
    /// Conservative windows executed.
    pub windows: u64,
    /// Cross-LP messages delivered across all windows.
    pub messages: u64,
    /// Wall-clock nanoseconds the coordinator spent waiting on the
    /// window barriers (includes the workers' window execution time, so
    /// this is coordinator idle time, not pure barrier overhead).
    pub barrier_wait_nanos: u64,
}

static PROFILE_WINDOWS: AtomicU64 = AtomicU64::new(0);
static PROFILE_MESSAGES: AtomicU64 = AtomicU64::new(0);
static PROFILE_BARRIER_NANOS: AtomicU64 = AtomicU64::new(0);

/// The profile of the most recent [`run_conservative`] call. Process-wide
/// and overwritten by every run (concurrent runs interleave), so read it
/// immediately after the run of interest.
pub fn last_run_profile() -> LpRunProfile {
    LpRunProfile {
        windows: PROFILE_WINDOWS.load(Ordering::Acquire),
        messages: PROFILE_MESSAGES.load(Ordering::Acquire),
        barrier_wait_nanos: PROFILE_BARRIER_NANOS.load(Ordering::Acquire),
    }
}

/// Per-LP mailboxes shared between the coordinator and one worker.
/// The barrier protocol alternates exclusive access, so the mutexes are
/// never contended; they exist to keep the sharing safe.
struct LpChannel<M> {
    /// Earliest pending local time after the last window (IDLE if none).
    next_time: AtomicU64,
    /// Messages emitted by this LP in the last window.
    outbox: Mutex<Vec<LpMessage<M>>>,
    /// Messages routed to this LP (with their source LP index),
    /// pre-sorted by the coordinator.
    inbox: Mutex<Vec<(SimTime, u32, M)>>,
}

/// Runs `lps` to completion (or until every pending event lies past
/// `deadline`) under the conservative window protocol, one worker thread
/// per LP plus the calling thread as coordinator. Threads are spawned
/// once and live for the whole run (`std::thread::scope`).
///
/// `lookahead` must be positive: it is the minimum cross-LP latency, and
/// a zero value would make every window empty.
///
/// The schedule executed is a pure function of the LPs' initial state —
/// worker interleaving cannot affect it — so a run with any `lps.len()`
/// partitioning of the same model is reproducible.
pub fn run_conservative<L: LogicalProcess>(
    lps: &mut [L],
    lookahead: SimDuration,
    deadline: SimTime,
) {
    assert!(
        lookahead.as_nanos() > 0,
        "conservative windows need a positive lookahead"
    );
    let k = lps.len();
    if k == 0 {
        return;
    }
    let channels: Vec<LpChannel<L::Message>> = lps
        .iter()
        .map(|lp| LpChannel {
            next_time: AtomicU64::new(lp.next_time().map_or(IDLE, SimTime::as_nanos)),
            outbox: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
        })
        .collect();
    // Participants: k workers + the coordinator.
    let barrier = WindowBarrier::new(k + 1);
    // The window horizon for the next epoch; IDLE signals termination.
    let horizon = AtomicU64::new(IDLE);
    // Coordinator-side profile counters (wall clock only; published to
    // the process-wide statics after the run).
    let mut prof_windows = 0u64;
    let mut prof_messages = 0u64;
    let mut prof_barrier_nanos = 0u64;

    std::thread::scope(|scope| {
        for (i, lp) in lps.iter_mut().enumerate() {
            let channels = &channels;
            let barrier = &barrier;
            let horizon = &horizon;
            scope.spawn(move || {
                let ch = &channels[i];
                let mut outbox = Vec::new();
                loop {
                    // (1) The coordinator published the horizon and routed
                    // inboxes.
                    barrier.wait();
                    let cap = horizon.load(Ordering::Acquire);
                    if cap == IDLE {
                        break;
                    }
                    for (at, src, payload) in ch.inbox.lock().expect("inbox lock").drain(..) {
                        lp.receive(at, src, payload);
                    }
                    lp.run_window(SimTime::from_nanos(cap), &mut outbox);
                    ch.next_time.store(
                        lp.next_time().map_or(IDLE, SimTime::as_nanos),
                        Ordering::Release,
                    );
                    ch.outbox.lock().expect("outbox lock").append(&mut outbox);
                    // (2) Window complete; hand control to the coordinator.
                    barrier.wait();
                }
            });
        }

        // Coordinator: merge messages, derive the next window, repeat.
        // (at, src, emission index, payload) quadruples give the
        // deterministic delivery order.
        let mut pending: Vec<(u64, usize, usize, usize, L::Message)> = Vec::new();
        loop {
            let mut min = channels
                .iter()
                .map(|ch| ch.next_time.load(Ordering::Acquire))
                .min()
                .unwrap_or(IDLE);
            for (src, ch) in channels.iter().enumerate() {
                for (idx, msg) in ch.outbox.lock().expect("outbox lock").drain(..).enumerate() {
                    min = min.min(msg.at.as_nanos());
                    pending.push((msg.at.as_nanos(), src, idx, msg.dst, msg.payload));
                }
            }
            if min == IDLE || min > deadline.as_nanos() {
                horizon.store(IDLE, Ordering::Release);
                barrier.wait(); // release workers into termination
                break;
            }
            // Deterministic delivery order: (time, source LP, emission
            // order). The sort is total, so thread scheduling is
            // irrelevant.
            pending.sort_unstable_by_key(|(at, src, idx, _, _)| (*at, *src, *idx));
            prof_messages += pending.len() as u64;
            for (at, src, _, dst, payload) in pending.drain(..) {
                channels[dst].inbox.lock().expect("inbox lock").push((
                    SimTime::from_nanos(at),
                    src as u32,
                    payload,
                ));
            }
            let cap = min
                .saturating_add(lookahead.as_nanos())
                .min(deadline.as_nanos().saturating_add(1));
            horizon.store(cap, Ordering::Release);
            prof_windows += 1;
            let waited = std::time::Instant::now();
            barrier.wait(); // (1) start the window
            barrier.wait(); // (2) wait for every worker to finish it
            prof_barrier_nanos += waited.elapsed().as_nanos() as u64;
        }
    });
    PROFILE_WINDOWS.store(prof_windows, Ordering::Release);
    PROFILE_MESSAGES.store(prof_messages, Ordering::Release);
    PROFILE_BARRIER_NANOS.store(prof_barrier_nanos, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    /// A token-passing LP ring: each LP holds a FEL of `(time, token)`
    /// events; processing an event at `t` forwards `token - 1` to the
    /// next LP at `t + delay` until the token is spent. Mirrors the
    /// structure (FEL + cross-LP sends) of the network World shards.
    struct RingLp {
        id: usize,
        n: usize,
        delay: SimDuration,
        fel: EventQueue<u64>,
        log: Vec<(u64, u64)>,
    }

    impl LogicalProcess for RingLp {
        type Message = u64;

        fn next_time(&self) -> Option<SimTime> {
            self.fel.peek_time()
        }

        fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<u64>>) {
            while self
                .fel
                .peek_time()
                .is_some_and(|t| t.as_nanos() < horizon.as_nanos())
            {
                let (now, token) = self.fel.pop().expect("peeked event pops");
                self.log.push((now.as_nanos(), token));
                if token > 0 {
                    outbox.push(LpMessage {
                        at: now + self.delay,
                        dst: (self.id + 1) % self.n,
                        payload: token - 1,
                    });
                }
            }
        }

        fn receive(&mut self, at: SimTime, _src: u32, payload: u64) {
            self.fel.push(at, payload);
        }
    }

    fn ring(n: usize, delay_ns: u64, tokens: u64) -> Vec<RingLp> {
        let mut lps: Vec<RingLp> = (0..n)
            .map(|id| RingLp {
                id,
                n,
                delay: SimDuration::from_nanos(delay_ns),
                fel: EventQueue::new(),
                log: Vec::new(),
            })
            .collect();
        lps[0].fel.push(SimTime::from_nanos(1), tokens);
        lps
    }

    #[test]
    fn ring_matches_sequential_reference() {
        let delay = 7;
        let tokens = 100;
        for n in [1, 2, 3, 4] {
            let mut lps = ring(n, delay, tokens);
            run_conservative(
                &mut lps,
                SimDuration::from_nanos(delay),
                SimTime::from_nanos(u64::MAX - 1),
            );
            // Sequential reference: token t is processed by LP
            // (tokens - t) % n at time 1 + (tokens - t) * delay.
            let mut expect: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
            for step in 0..=tokens {
                expect[(step as usize) % n].push((1 + step * delay, tokens - step));
            }
            for (lp, want) in lps.iter().zip(&expect) {
                assert_eq!(&lp.log, want, "n={n}");
            }
        }
    }

    #[test]
    fn deadline_stops_the_run() {
        let mut lps = ring(2, 10, 1_000);
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(10),
            SimTime::from_nanos(501),
        );
        // Events at 1, 11, ..., 501 have fired: 51 of them, alternating
        // between the two LPs starting at LP 0.
        let fired: usize = lps.iter().map(|lp| lp.log.len()).sum();
        assert_eq!(fired, 51);
        assert!(lps.iter().flat_map(|lp| &lp.log).all(|&(t, _)| t <= 501));
    }

    #[test]
    fn profile_counts_windows_and_messages() {
        let tokens = 50;
        let mut lps = ring(2, 10, tokens);
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(10),
            SimTime::from_nanos(u64::MAX - 1),
        );
        let p = last_run_profile();
        // Every token hop is one cross-LP message; each is delivered in
        // its own lookahead window here (hops are exactly one lookahead
        // apart), plus the initial window.
        assert_eq!(p.messages, tokens);
        assert!(
            p.windows >= tokens && p.windows <= tokens + 2,
            "windows {}",
            p.windows
        );
    }

    #[test]
    fn empty_lp_set_is_a_noop() {
        let mut lps: Vec<RingLp> = Vec::new();
        run_conservative(
            &mut lps,
            SimDuration::from_nanos(1),
            SimTime::from_nanos(100),
        );
    }

    #[test]
    fn same_instant_messages_deliver_in_source_order() {
        // Two LPs both send to LP 2 at the same instant; delivery (and
        // therefore FEL tie-break) must order by source LP id.
        struct Sender {
            id: usize,
            fired: bool,
        }
        struct Collector(Vec<u64>);
        enum Lp {
            S(Sender),
            C(Collector),
        }
        impl LogicalProcess for Lp {
            type Message = u64;
            fn next_time(&self) -> Option<SimTime> {
                match self {
                    Lp::S(s) if !s.fired => Some(SimTime::from_nanos(1)),
                    _ => None,
                }
            }
            fn run_window(&mut self, horizon: SimTime, outbox: &mut Vec<LpMessage<u64>>) {
                if let Lp::S(s) = self {
                    if !s.fired && horizon.as_nanos() > 1 {
                        s.fired = true;
                        outbox.push(LpMessage {
                            at: SimTime::from_nanos(11),
                            dst: 2,
                            payload: s.id as u64,
                        });
                    }
                }
            }
            fn receive(&mut self, _at: SimTime, _src: u32, payload: u64) {
                if let Lp::C(c) = self {
                    c.0.push(payload);
                }
            }
        }
        // Run twice with the senders' spawn order fixed: order must be
        // by source id, not arrival timing.
        for _ in 0..16 {
            let mut lps = vec![
                Lp::S(Sender {
                    id: 0,
                    fired: false,
                }),
                Lp::S(Sender {
                    id: 1,
                    fired: false,
                }),
                Lp::C(Collector(Vec::new())),
            ];
            run_conservative(
                &mut lps,
                SimDuration::from_nanos(10),
                SimTime::from_nanos(100),
            );
            let Lp::C(c) = &lps[2] else {
                panic!("collector")
            };
            assert_eq!(c.0, vec![0, 1]);
        }
    }
}
