//! Seeded randomness helpers for deterministic experiments.
//!
//! All stochastic inputs to an experiment (flow arrivals, sizes,
//! source/destination choices) draw from a [`SimRng`] created from an
//! explicit seed, so every run is reproducible bit-for-bit.
//!
//! The generator is an in-tree xoshiro256\*\* seeded through splitmix64
//! (Blackman & Vigna), so the workspace builds with no external
//! dependencies and the stream for a given seed is stable across
//! toolchains and platforms.

/// One step of the splitmix64 sequence; used to expand a 64-bit seed
/// into the 256-bit xoshiro state (the seeding procedure the xoshiro
/// authors recommend).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random-number generator for simulation inputs.
///
/// xoshiro256\*\* core plus the distributions the experiments need
/// (exponential inter-arrivals, discrete choice).
///
/// # Example
///
/// ```
/// use pmsb_simcore::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // determinism
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut sm);
        }
        // The all-zero state is the one fixed point of xoshiro; splitmix64
        // expansion cannot realistically produce it, but guard anyway.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { state }
    }

    /// Derives an independent child generator; used to give each traffic
    /// source its own stream so adding a source does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// The next raw 64-bit value (xoshiro256\*\* step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`, bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        // Reject the low `2^64 mod n` values so every residue is equally
        // likely; at most one retry in expectation for any n.
        let reject_below = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            if x >= reject_below {
                return (x % n) as usize;
            }
        }
    }

    /// An exponentially distributed value with the given mean (inverse
    /// rate), via inverse-CDF sampling. Used for Poisson inter-arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Samples an index in `[0, weights.len())` with probability
    /// proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_choice needs positive total weight"
        );
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones_of_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SimRng::seed_from(0);
        let vals: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|v| *v != 0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mean = 50.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!(
            (got - mean).abs() / mean < 0.05,
            "mean {got} too far from {mean}"
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_covers_both_halves() {
        let mut rng = SimRng::seed_from(13);
        let n = 10_000;
        let low = (0..n).filter(|_| rng.uniform() < 0.5).count();
        let frac = low as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "lower-half fraction {frac}");
    }

    #[test]
    fn below_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_hits_every_residue() {
        let mut rng = SimRng::seed_from(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn weighted_choice_proportions() {
        let mut rng = SimRng::seed_from(11);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "got {frac}, want ~0.75");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        SimRng::seed_from(0).exponential(0.0);
    }
}
