//! Seeded randomness helpers for deterministic experiments.
//!
//! All stochastic inputs to an experiment (flow arrivals, sizes,
//! source/destination choices) draw from a [`SimRng`] created from an
//! explicit seed, so every run is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random-number generator for simulation inputs.
///
/// Thin wrapper around [`rand::rngs::StdRng`] adding the distributions the
/// experiments need (exponential inter-arrivals, discrete choice).
///
/// # Example
///
/// ```
/// use pmsb_simcore::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // determinism
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each traffic
    /// source its own stream so adding a source does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// An exponentially distributed value with the given mean (inverse
    /// rate), via inverse-CDF sampling. Used for Poisson inter-arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Samples an index in `[0, weights.len())` with probability
    /// proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_choice needs positive total weight"
        );
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones_of_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mean = 50.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!(
            (got - mean).abs() / mean < 0.05,
            "mean {got} too far from {mean}"
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn weighted_choice_proportions() {
        let mut rng = SimRng::seed_from(11);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "got {frac}, want ~0.75");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        SimRng::seed_from(0).exponential(0.0);
    }
}
