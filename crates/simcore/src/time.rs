//! Nanosecond-resolution simulation time.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] a span between instants. Both wrap a `u64` nanosecond
//! count; 2^64 ns ≈ 584 years of simulated time, far beyond any experiment
//! in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// # Example
///
/// ```
/// use pmsb_simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Example
///
/// ```
/// use pmsb_simcore::SimDuration;
///
/// // Serialization delay of a 1500-byte packet on a 10 Gbps link:
/// let d = SimDuration::for_bytes(1500, 10_000_000_000);
/// assert_eq!(d.as_nanos(), 1_200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" time).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the start of the run.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since the start of the run, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "duration_since: earlier {earlier} is after self {self}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a float second count, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The serialization delay of `bytes` bytes on a link of
    /// `bits_per_sec` bits per second, rounded to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn for_bytes(bytes: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = (bytes as u128) * 8 * 1_000_000_000;
        SimDuration(((bits + (bits_per_sec as u128) / 2) / bits_per_sec as u128) as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds in this duration, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    /// Negative and non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(200);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.duration_since(SimTime::ZERO).as_nanos(), 500);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
    }

    #[test]
    fn serialization_delay_10g() {
        // 1500 B at 10 Gbps = 1.2 us.
        let d = SimDuration::for_bytes(1500, 10_000_000_000);
        assert_eq!(d, SimDuration::from_nanos(1200));
        // 1500 B at 1 Gbps = 12 us.
        let d = SimDuration::for_bytes(1500, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(12));
    }

    #[test]
    fn serialization_delay_rounds() {
        // 1 byte at 3 Gbps = 8/3 ns, rounds to 3.
        assert_eq!(SimDuration::for_bytes(1, 3_000_000_000).as_nanos(), 3);
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(15).to_string(), "15ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.000us");
        assert_eq!(SimDuration::from_millis(15).to_string(), "15.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
