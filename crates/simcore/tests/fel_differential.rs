//! Differential test: the timing-wheel [`EventQueue`] must pop the exact
//! same (time, payload) sequence as the reference binary-heap
//! [`HeapQueue`] on randomized seeded workloads.
//!
//! The generators below deliberately exercise every structural path of the
//! wheel: same-instant bursts (FIFO tie-break), pushes at the just-popped
//! timestamp, jumps across level windows (cascades), far-future times
//! (overflow heap + migration back into the wheel), and interleaved
//! push/pop schedules where placement happens against a moving clock.

use pmsb_simcore::rng::SimRng;
use pmsb_simcore::{EventQueue, HeapQueue, SimTime};

/// Drives both queues through the same schedule and asserts every popped
/// (time, payload) pair matches. `next_at` gets the current clock and the
/// RNG and returns the next absolute timestamp (must be >= the clock).
fn run_differential(
    label: &str,
    seed: u64,
    ops: usize,
    pop_every: usize,
    mut next_at: impl FnMut(u64, &mut SimRng) -> u64,
) {
    let mut rng = SimRng::seed_from(seed);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    for op in 0..ops {
        let at = SimTime::from_nanos(next_at(wheel.now().as_nanos(), &mut rng));
        wheel.push(at, op as u64);
        heap.push(at, op as u64);
        if pop_every > 0 && op % pop_every == pop_every - 1 {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "[{label} seed={seed}] interleaved pop diverged");
            assert_eq!(
                wheel.peek_time(),
                heap.peek_time(),
                "[{label} seed={seed}] peek diverged"
            );
        }
    }
    let mut drained = 0usize;
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(
            w, h,
            "[{label} seed={seed}] drain diverged at pop #{drained}"
        );
        if w.is_none() {
            break;
        }
        drained += 1;
        assert_eq!(
            wheel.now(),
            heap.now(),
            "[{label} seed={seed}] clock diverged"
        );
    }
    assert_eq!(wheel.len(), 0);
    assert_eq!(wheel.scheduled_count(), heap.scheduled_count());
}

#[test]
fn near_future_workload_matches_heap() {
    // Dense near-future times: the common netsim case, all level 0/1.
    for seed in [1, 2, 3] {
        run_differential("near", seed, 10_000, 3, |now, rng| {
            now + rng.below(200) as u64
        });
    }
}

#[test]
fn tie_heavy_workload_matches_heap() {
    // Many events at identical instants: FIFO tie-break is load-bearing.
    for seed in [10, 11] {
        run_differential("ties", seed, 10_000, 4, |now, rng| {
            now + (rng.below(4) as u64) * 50
        });
    }
}

#[test]
fn cascade_workload_matches_heap() {
    // Spans that force placements on every wheel level and frequent
    // cascades as the clock crosses 64^k boundaries.
    for seed in [20, 21, 22] {
        run_differential("cascade", seed, 10_000, 2, |now, rng| {
            let level = rng.below(4) as u32;
            now + ((rng.below(64) as u64) << (6 * level))
        });
    }
}

#[test]
fn overflow_workload_matches_heap() {
    // Mix of near times and far-future deadlines (RTO-style, beyond the
    // ~16.7 ms wheel horizon) so events migrate overflow -> wheel.
    for seed in [30, 31] {
        run_differential("overflow", seed, 10_000, 5, |now, rng| {
            if rng.below(8) == 0 {
                now + (1 << 24) + rng.next_u64() % (1 << 28)
            } else {
                now + rng.below(5_000) as u64
            }
        });
    }
}

#[test]
fn batch_then_drain_matches_heap() {
    // Pure batch load (no interleaved pops): everything is placed against
    // a clock stuck at zero, then drained in one go.
    for seed in [40, 41] {
        run_differential("batch", seed, 10_000, 0, |_, rng| {
            rng.next_u64() % (1 << 30)
        });
    }
}

#[test]
fn push_at_now_matches_heap() {
    // Every fourth push lands exactly on the just-popped instant, the
    // "schedule follow-up work at the current time" pattern handlers use.
    for seed in [50, 51] {
        run_differential("at-now", seed, 10_000, 2, |now, rng| {
            if rng.below(4) == 0 {
                now
            } else {
                now + rng.below(300) as u64
            }
        });
    }
}
