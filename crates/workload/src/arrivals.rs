//! Poisson arrival processes and open-loop load calibration.

use pmsb_simcore::rng::SimRng;

/// The Poisson flow arrival rate (flows/second) that drives a fabric of
/// aggregate host capacity `total_capacity_bps` at fractional `load`, for
/// flows of `mean_flow_bytes` average size:
/// `rate = load · C_total / (8 · E[size])`.
///
/// # Example
///
/// ```
/// use pmsb_workload::arrival_rate_for_load;
///
/// // 48 hosts x 10 Gbps at 50% load, 1 MB mean flows:
/// let r = arrival_rate_for_load(0.5, 48 * 10_000_000_000, 1_000_000.0);
/// assert!((r - 30_000.0).abs() < 1.0);
/// ```
///
/// # Panics
///
/// Panics if `load` is not in `(0, 1]` or `mean_flow_bytes` is not
/// positive.
pub fn arrival_rate_for_load(load: f64, total_capacity_bps: u64, mean_flow_bytes: f64) -> f64 {
    assert!(
        load > 0.0 && load <= 1.0,
        "load must be in (0,1], got {load}"
    );
    assert!(
        mean_flow_bytes.is_finite() && mean_flow_bytes > 0.0,
        "mean flow size must be positive"
    );
    load * total_capacity_bps as f64 / (8.0 * mean_flow_bytes)
}

/// A Poisson (memoryless) arrival process generating flow start times.
///
/// # Example
///
/// ```
/// use pmsb_simcore::rng::SimRng;
/// use pmsb_workload::PoissonArrivals;
///
/// let mut arr = PoissonArrivals::with_rate(1_000_000.0); // 1M flows/s
/// let mut rng = SimRng::seed_from(3);
/// let t1 = arr.next_arrival_nanos(&mut rng);
/// let t2 = arr.next_arrival_nanos(&mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonArrivals {
    mean_interarrival_nanos: f64,
    clock_nanos: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given arrival rate in flows per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn with_rate(flows_per_sec: f64) -> Self {
        assert!(
            flows_per_sec.is_finite() && flows_per_sec > 0.0,
            "arrival rate must be positive, got {flows_per_sec}"
        );
        PoissonArrivals {
            mean_interarrival_nanos: 1e9 / flows_per_sec,
            clock_nanos: 0.0,
        }
    }

    /// The mean inter-arrival gap in nanoseconds.
    pub fn mean_interarrival_nanos(&self) -> f64 {
        self.mean_interarrival_nanos
    }

    /// Draws the next arrival's absolute time in nanoseconds; successive
    /// calls advance an internal clock (strictly increasing by at least
    /// one nanosecond so ties never collapse).
    pub fn next_arrival_nanos(&mut self, rng: &mut SimRng) -> u64 {
        let gap = rng.exponential(self.mean_interarrival_nanos).max(1.0);
        self.clock_nanos += gap;
        self.clock_nanos.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_calibration_example() {
        // At load 1.0 the offered bits equal the capacity.
        let rate = arrival_rate_for_load(1.0, 10_000_000_000, 1_250_000.0);
        // 10 Gbps / (8 * 1.25 MB) = 1000 flows/s.
        assert!((rate - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_mean_matches_rate() {
        let mut arr = PoissonArrivals::with_rate(100_000.0); // 10 us mean gap
        let mut rng = SimRng::seed_from(9);
        let n = 20_000;
        let mut last = 0u64;
        let mut total_gap = 0u64;
        for _ in 0..n {
            let t = arr.next_arrival_nanos(&mut rng);
            total_gap += t - last;
            last = t;
        }
        let mean = total_gap as f64 / n as f64;
        assert!((mean - 10_000.0).abs() / 10_000.0 < 0.05, "mean gap {mean}");
    }

    #[test]
    #[should_panic(expected = "load")]
    fn rejects_zero_load() {
        arrival_rate_for_load(0.0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        PoissonArrivals::with_rate(0.0);
    }

    /// Arrival times are non-decreasing for seeded-random seeds and rates.
    #[test]
    fn strictly_increasing() {
        let mut meta = SimRng::seed_from(0xa1);
        for _ in 0..24 {
            let seed = meta.next_u64() % 500;
            let rate = 1.0 + meta.uniform() * 1e9;
            let mut arr = PoissonArrivals::with_rate(rate);
            let mut rng = SimRng::seed_from(seed);
            let mut last = 0u64;
            for _ in 0..100 {
                let t = arr.next_arrival_nanos(&mut rng);
                assert!(t >= last);
                last = t;
            }
        }
    }

    /// Higher load gives a proportionally higher rate.
    #[test]
    fn rate_linear_in_load() {
        let mut rng = SimRng::seed_from(0xa2);
        for _ in 0..64 {
            let load = 0.01 + rng.uniform() * 0.49;
            let r1 = arrival_rate_for_load(load, 1_000_000_000, 10_000.0);
            let r2 = arrival_rate_for_load(load * 2.0, 1_000_000_000, 10_000.0);
            assert!((r2 - 2.0 * r1).abs() < 1e-6 * r1);
        }
    }
}
