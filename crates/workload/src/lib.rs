#![warn(missing_docs)]

//! Synthetic datacenter workloads for the PMSB experiments.
//!
//! The paper's large-scale evaluation uses Poisson flow arrivals over a
//! 48-host leaf–spine fabric with flows drawn from a mix of 60% small,
//! 30% medium and 10% large flows, spread evenly over 8 services. This
//! crate generates the closest synthetic equivalent:
//!
//! * [`size`] — flow-size distributions: the paper's mix
//!   ([`size::PaperMix`]) plus the standard web-search and data-mining
//!   empirical CDFs for extension experiments,
//! * [`arrivals`] — Poisson arrival processes with open-loop load
//!   calibration,
//! * [`traffic`] — full traffic matrices: who talks to whom, in which
//!   service class, when, and how much,
//! * [`pattern`] — hyperscale streaming patterns (synchronized incast,
//!   all-to-all shuffle, Zipf hot-service, mixes) generated lazily so a
//!   million-flow schedule is never materialised.
//!
//! # Example
//!
//! ```
//! use pmsb_simcore::rng::SimRng;
//! use pmsb_workload::traffic::TrafficSpec;
//!
//! let mut rng = SimRng::seed_from(1);
//! let spec = TrafficSpec::paper_large_scale(48, 0.5);
//! let flows = spec.generate(200, &mut rng);
//! assert_eq!(flows.len(), 200);
//! assert!(flows.iter().all(|f| f.src_host != f.dst_host));
//! assert!(flows.iter().all(|f| f.service < 8));
//! ```

pub mod arrivals;
pub mod pattern;
pub mod size;
pub mod traffic;

pub use arrivals::{arrival_rate_for_load, PoissonArrivals};
pub use pattern::{PatternFlows, PatternSpec};
pub use size::{DataMining, FlowSizeDist, PaperMix, SizeDistSpec, WebSearch};
pub use traffic::{FlowSpec, TrafficSpec};
