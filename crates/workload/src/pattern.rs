//! Composable hyperscale traffic patterns as streaming iterators.
//!
//! The paper's §VI-B workload ([`crate::traffic::TrafficSpec`]) buffers a
//! complete `Vec<FlowSpec>` up front — fine for 16 000 flows, hopeless
//! for a million. The patterns here are *streaming*: a
//! [`PatternSpec::flows`] iterator holds O(1) state (plus an O(hosts)
//! Zipf table) and yields [`FlowSpec`]s one at a time with nondecreasing
//! start times, so a simulator can pull the next arrival lazily and
//! never materialise the schedule.
//!
//! Three datacenter-day shapes beyond the paper, plus composition:
//!
//! * [`PatternSpec::Incast`] — synchronized N-to-1: every epoch, a
//!   rotating aggregator receives `fan_in` simultaneous requests (the
//!   partition/aggregate idiom; the regime where the heavy-traffic
//!   switch-scaling laws apply),
//! * [`PatternSpec::Shuffle`] — all-to-all waves: in wave `s`, every
//!   host sends one flow to the host `s` positions ahead (MapReduce-style
//!   shuffle, permutation traffic on the fabric's bisection),
//! * [`PatternSpec::HotService`] — Poisson arrivals whose destination is
//!   a Zipf draw over hosts: a skewed hot-service/hot-key population,
//! * [`PatternSpec::Mix`] — a start-time-ordered merge of sub-patterns.
//!
//! Determinism: the same `(spec, num_hosts, seed, total_flows)` produces
//! the same flow sequence, so parallel simulator shards can each rebuild
//! the identical stream and agree on flow-id assignment.

use pmsb_simcore::rng::SimRng;

use crate::arrivals::PoissonArrivals;
use crate::size::{FlowSizeDist, SizeDistSpec};
use crate::traffic::FlowSpec;

/// Service classes the patterns spread flows over (matching the paper's
/// 8-queue switch configuration; switches fold with `service % queues`).
pub const NUM_SERVICES: usize = 8;

/// A composable streaming traffic pattern. See the module docs for the
/// shapes; build the stream with [`PatternSpec::flows`].
#[derive(Debug, Clone, PartialEq)]
pub enum PatternSpec {
    /// Synchronized N-to-1 incast: every `epoch_nanos`, the next
    /// aggregator (rotating over hosts) receives `fan_in` simultaneous
    /// `request_bytes` flows from distinct other hosts. `fan_in` is
    /// clamped to `num_hosts - 1` at stream construction.
    Incast {
        /// Simultaneous senders per epoch.
        fan_in: usize,
        /// Gap between synchronized epochs in nanoseconds.
        epoch_nanos: u64,
        /// Bytes per request flow.
        request_bytes: u64,
    },
    /// All-to-all shuffle: wave `s` (cycling over strides `1..hosts`)
    /// has every host send `flow_bytes` to the host `s` ahead of it;
    /// waves start `wave_gap_nanos` apart.
    Shuffle {
        /// Bytes per shuffle flow.
        flow_bytes: u64,
        /// Gap between waves in nanoseconds.
        wave_gap_nanos: u64,
    },
    /// Skewed hot-service traffic: Poisson arrivals at `flows_per_sec`,
    /// destination drawn Zipf(`zipf_exponent`) over hosts (host 0 is the
    /// hottest), uniform source, fixed `request_bytes`.
    HotService {
        /// Zipf shape `s` (0 = uniform; 1.0–1.3 typical key skew).
        zipf_exponent: f64,
        /// Mean arrival rate.
        flows_per_sec: f64,
        /// Bytes per request flow.
        request_bytes: u64,
    },
    /// Start-time-ordered merge of sub-patterns (ties resolve to the
    /// earlier part). Each part gets an independent RNG stream forked
    /// from the seed.
    Mix(Vec<PatternSpec>),
    /// The wrapped pattern with its fixed per-flow sizes replaced by
    /// draws from a named empirical distribution ([`SizeDistSpec`]):
    /// arrival times, endpoints, and services are untouched, so the
    /// shape keeps its synchronization structure while sizes follow the
    /// paper's web-search/data-mining CDFs. The size RNG is forked from
    /// the seed independently of the wrapped pattern's stream.
    Sized {
        /// The pattern supplying arrivals and endpoints.
        pattern: Box<PatternSpec>,
        /// The distribution supplying flow sizes.
        dist: SizeDistSpec,
    },
}

impl PatternSpec {
    /// Short name for reports and CLI errors.
    pub fn name(&self) -> &'static str {
        match self {
            PatternSpec::Incast { .. } => "incast",
            PatternSpec::Shuffle { .. } => "shuffle",
            PatternSpec::HotService { .. } => "hotservice",
            PatternSpec::Mix(_) => "mix",
            // A sized wrapper keeps the wrapped shape's name: reports
            // group by traffic shape, and the size distribution is
            // reported separately where it matters.
            PatternSpec::Sized { pattern, .. } => pattern.name(),
        }
    }

    /// Wraps `pattern` so flow sizes are drawn from `dist`.
    pub fn sized(pattern: PatternSpec, dist: SizeDistSpec) -> Self {
        PatternSpec::Sized {
            pattern: Box::new(pattern),
            dist,
        }
    }

    /// The default incast shape: 32-to-1, 500 µs epochs, 20 KB requests.
    pub fn incast(fan_in: usize) -> Self {
        PatternSpec::Incast {
            fan_in,
            epoch_nanos: 500_000,
            request_bytes: 20_000,
        }
    }

    /// The default shuffle shape: 100 KB flows, 1 ms waves.
    pub fn shuffle() -> Self {
        PatternSpec::Shuffle {
            flow_bytes: 100_000,
            wave_gap_nanos: 1_000_000,
        }
    }

    /// The default hot-service shape: Zipf 1.2, 100k flows/s, 20 KB.
    pub fn hotservice(zipf_exponent: f64) -> Self {
        PatternSpec::HotService {
            zipf_exponent,
            flows_per_sec: 100_000.0,
            request_bytes: 20_000,
        }
    }

    /// Builds the deterministic stream of exactly `total_flows` flows
    /// over `num_hosts` hosts. Flow ids are assigned sequentially from 0
    /// in emission order; start times are nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts < 2` or the spec's parameters are degenerate
    /// (zero fan-in, zero bytes, non-positive rate, empty mix).
    pub fn flows(&self, num_hosts: usize, seed: u64, total_flows: u64) -> PatternFlows {
        assert!(num_hosts >= 2, "patterns need at least two hosts");
        let inner = self.build(num_hosts, seed);
        PatternFlows {
            inner,
            remaining: total_flows,
            next_id: 0,
        }
    }

    fn build(&self, num_hosts: usize, seed: u64) -> Inner {
        match self {
            PatternSpec::Incast {
                fan_in,
                epoch_nanos,
                request_bytes,
            } => {
                assert!(*fan_in >= 1, "incast fan-in must be at least 1");
                assert!(*epoch_nanos >= 1, "incast epoch must be positive");
                assert!(*request_bytes >= 1, "incast request must carry bytes");
                Inner::Incast {
                    rng: SimRng::seed_from(seed),
                    num_hosts,
                    fan_in: (*fan_in).min(num_hosts - 1),
                    epoch_nanos: *epoch_nanos,
                    request_bytes: *request_bytes,
                    epoch: 0,
                    in_epoch: 0,
                    agg: 0,
                    base: 0,
                }
            }
            PatternSpec::Shuffle {
                flow_bytes,
                wave_gap_nanos,
            } => {
                assert!(*flow_bytes >= 1, "shuffle flows must carry bytes");
                assert!(*wave_gap_nanos >= 1, "shuffle wave gap must be positive");
                Inner::Shuffle {
                    rng: SimRng::seed_from(seed),
                    num_hosts,
                    flow_bytes: *flow_bytes,
                    wave_gap_nanos: *wave_gap_nanos,
                    wave: 0,
                    src: 0,
                }
            }
            PatternSpec::HotService {
                zipf_exponent,
                flows_per_sec,
                request_bytes,
            } => {
                assert!(*request_bytes >= 1, "hotservice requests must carry bytes");
                Inner::Hot {
                    rng: SimRng::seed_from(seed),
                    arrivals: PoissonArrivals::with_rate(*flows_per_sec),
                    zipf_cdf: zipf_cdf(num_hosts, *zipf_exponent),
                    num_hosts,
                    request_bytes: *request_bytes,
                }
            }
            PatternSpec::Mix(parts) => {
                assert!(!parts.is_empty(), "mix needs at least one part");
                let parts: Vec<Inner> = parts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        // Distinct deterministic stream per part.
                        p.build(
                            num_hosts,
                            seed.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(1 + i as u64)),
                        )
                    })
                    .collect();
                let peeked = parts.iter().map(|_| None).collect();
                Inner::Mix { parts, peeked }
            }
            PatternSpec::Sized { pattern, dist } => Inner::Sized {
                inner: Box::new(pattern.build(num_hosts, seed)),
                dist: dist.build(),
                // A distinct deterministic stream for sizes, so the
                // wrapped pattern emits exactly the arrivals it would
                // emit unwrapped.
                rng: SimRng::seed_from(seed.wrapping_add(0xa5a5_5a5a_c3c3_3c3c)),
            },
        }
    }
}

/// Normalized cumulative Zipf weights `w_j ∝ (j+1)^-s` over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for j in 0..n {
        acc += ((j + 1) as f64).powf(-s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Draws a rank from a precomputed cumulative distribution.
fn draw_rank(cdf: &[f64], rng: &mut SimRng) -> usize {
    let u = rng.uniform();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

#[derive(Debug)]
enum Inner {
    Incast {
        rng: SimRng,
        num_hosts: usize,
        fan_in: usize,
        epoch_nanos: u64,
        request_bytes: u64,
        epoch: u64,
        in_epoch: usize,
        agg: usize,
        base: usize,
    },
    Shuffle {
        rng: SimRng,
        num_hosts: usize,
        flow_bytes: u64,
        wave_gap_nanos: u64,
        wave: u64,
        src: usize,
    },
    Hot {
        rng: SimRng,
        arrivals: PoissonArrivals,
        zipf_cdf: Vec<f64>,
        num_hosts: usize,
        request_bytes: u64,
    },
    Mix {
        parts: Vec<Inner>,
        peeked: Vec<Option<FlowSpec>>,
    },
    Sized {
        inner: Box<Inner>,
        dist: Box<dyn FlowSizeDist>,
        rng: SimRng,
    },
}

impl Inner {
    /// Produces the next flow of the underlying (unbounded) pattern;
    /// `flow_id` is filled in by the wrapper.
    fn gen(&mut self) -> FlowSpec {
        match self {
            Inner::Incast {
                rng,
                num_hosts,
                fan_in,
                epoch_nanos,
                request_bytes,
                epoch,
                in_epoch,
                agg,
                base,
            } => {
                let n = *num_hosts;
                if *in_epoch == 0 {
                    *agg = (*epoch % n as u64) as usize;
                    *base = rng.below(n - 1);
                }
                // Distinct senders: a rotated contiguous block of the
                // n-1 non-aggregator hosts.
                let src = (*agg + 1 + (*base + *in_epoch) % (n - 1)) % n;
                let spec = FlowSpec {
                    flow_id: 0,
                    src_host: src,
                    dst_host: *agg,
                    service: rng.below(NUM_SERVICES),
                    size_bytes: *request_bytes,
                    start_nanos: *epoch * *epoch_nanos,
                };
                *in_epoch += 1;
                if *in_epoch == *fan_in {
                    *in_epoch = 0;
                    *epoch += 1;
                }
                spec
            }
            Inner::Shuffle {
                rng,
                num_hosts,
                flow_bytes,
                wave_gap_nanos,
                wave,
                src,
            } => {
                let n = *num_hosts;
                let stride = 1 + (*wave % (n as u64 - 1)) as usize;
                let spec = FlowSpec {
                    flow_id: 0,
                    src_host: *src,
                    dst_host: (*src + stride) % n,
                    service: rng.below(NUM_SERVICES),
                    size_bytes: *flow_bytes,
                    start_nanos: *wave * *wave_gap_nanos,
                };
                *src += 1;
                if *src == n {
                    *src = 0;
                    *wave += 1;
                }
                spec
            }
            Inner::Hot {
                rng,
                arrivals,
                zipf_cdf,
                num_hosts,
                request_bytes,
            } => {
                let start_nanos = arrivals.next_arrival_nanos(rng);
                let dst = draw_rank(zipf_cdf, rng);
                let mut src = rng.below(*num_hosts - 1);
                if src >= dst {
                    src += 1;
                }
                FlowSpec {
                    flow_id: 0,
                    src_host: src,
                    dst_host: dst,
                    service: rng.below(NUM_SERVICES),
                    size_bytes: *request_bytes,
                    start_nanos,
                }
            }
            Inner::Mix { parts, peeked } => {
                for (slot, part) in peeked.iter_mut().zip(parts.iter_mut()) {
                    if slot.is_none() {
                        *slot = Some(part.gen());
                    }
                }
                let winner = peeked
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_ref().expect("all peeked").start_nanos)
                    .map(|(i, _)| i)
                    .expect("mix is nonempty");
                peeked[winner].take().expect("winner peeked")
            }
            Inner::Sized { inner, dist, rng } => {
                let mut spec = inner.gen();
                spec.size_bytes = dist.sample(rng).max(1);
                spec
            }
        }
    }
}

/// The bounded, id-assigning stream built by [`PatternSpec::flows`].
#[derive(Debug)]
pub struct PatternFlows {
    inner: Inner,
    remaining: u64,
    next_id: u64,
}

impl Iterator for PatternFlows {
    type Item = FlowSpec;

    fn next(&mut self) -> Option<FlowSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut spec = self.inner.gen();
        spec.flow_id = self.next_id;
        self.next_id += 1;
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(spec: &PatternSpec, hosts: usize, seed: u64, n: u64) -> Vec<FlowSpec> {
        spec.flows(hosts, seed, n).collect()
    }

    fn check_valid(flows: &[FlowSpec], hosts: usize) {
        for w in flows.windows(2) {
            assert!(
                w[0].start_nanos <= w[1].start_nanos,
                "starts must not decrease"
            );
            assert_eq!(w[0].flow_id + 1, w[1].flow_id, "ids sequential");
        }
        for f in flows {
            assert!(f.src_host < hosts && f.dst_host < hosts);
            assert_ne!(f.src_host, f.dst_host, "flow to self");
            assert!(f.service < NUM_SERVICES);
            assert!(f.size_bytes >= 1);
        }
    }

    #[test]
    fn all_patterns_are_deterministic_and_valid() {
        let specs = [
            PatternSpec::incast(12),
            PatternSpec::shuffle(),
            PatternSpec::hotservice(1.2),
            PatternSpec::Mix(vec![PatternSpec::incast(8), PatternSpec::shuffle()]),
        ];
        for spec in &specs {
            let a = collect(spec, 16, 7, 400);
            let b = collect(spec, 16, 7, 400);
            assert_eq!(a, b, "{} must be deterministic", spec.name());
            assert_eq!(a.len(), 400);
            check_valid(&a, 16);
            let c = collect(spec, 16, 8, 400);
            assert_ne!(a, c, "{} must vary with the seed", spec.name());
        }
    }

    #[test]
    fn incast_epochs_are_synchronized_n_to_1() {
        let spec = PatternSpec::Incast {
            fan_in: 5,
            epoch_nanos: 1_000_000,
            request_bytes: 2_000,
        };
        let flows = collect(&spec, 12, 3, 50); // 10 full epochs
        for (e, epoch) in flows.chunks(5).enumerate() {
            let dst = epoch[0].dst_host;
            assert_eq!(dst, e % 12, "aggregator rotates");
            let t = epoch[0].start_nanos;
            assert_eq!(t, e as u64 * 1_000_000, "epoch start");
            let mut srcs: Vec<usize> = epoch.iter().map(|f| f.src_host).collect();
            srcs.sort_unstable();
            srcs.dedup();
            assert_eq!(srcs.len(), 5, "senders distinct");
            for f in epoch {
                assert_eq!(f.dst_host, dst, "same aggregator within the epoch");
                assert_eq!(f.start_nanos, t, "synchronized start");
                assert_eq!(f.size_bytes, 2_000);
            }
        }
    }

    #[test]
    fn incast_fan_in_clamps_to_fabric() {
        let spec = PatternSpec::incast(1000);
        let flows = collect(&spec, 8, 1, 14); // clamped fan-in = 7
        let first_epoch: Vec<_> = flows.iter().filter(|f| f.dst_host == 0).collect();
        assert_eq!(first_epoch.len(), 7, "fan-in clamped to hosts-1");
    }

    #[test]
    fn shuffle_waves_cover_all_sources() {
        let spec = PatternSpec::Shuffle {
            flow_bytes: 50_000,
            wave_gap_nanos: 10_000,
        };
        let n = 10;
        let flows = collect(&spec, n, 5, 3 * n as u64);
        for (w, wave) in flows.chunks(n).enumerate() {
            let stride = 1 + w % (n - 1);
            for (i, f) in wave.iter().enumerate() {
                assert_eq!(f.src_host, i, "every host sends once per wave");
                assert_eq!(f.dst_host, (i + stride) % n, "stride {stride}");
                assert_eq!(f.start_nanos, w as u64 * 10_000);
            }
        }
    }

    #[test]
    fn hotservice_skews_towards_low_ranks() {
        let spec = PatternSpec::HotService {
            zipf_exponent: 1.2,
            flows_per_sec: 1_000_000.0,
            request_bytes: 2_000,
        };
        let n = 16;
        let flows = collect(&spec, n, 11, 20_000);
        let mut hits = vec![0usize; n];
        for f in &flows {
            hits[f.dst_host] += 1;
        }
        assert!(
            hits[0] > hits[n / 2] && hits[n / 2] >= hits[n - 1],
            "zipf skew must rank destinations: {hits:?}"
        );
        // Zipf 1.2 over 16 ranks gives the hottest host ~38% of draws.
        let frac = hits[0] as f64 / flows.len() as f64;
        assert!((0.25..0.55).contains(&frac), "hot fraction {frac}");
        // Poisson arrivals roughly match the configured rate.
        let span = flows.last().unwrap().start_nanos as f64 / 1e9;
        let rate = flows.len() as f64 / span;
        assert!(
            (rate - 1_000_000.0).abs() / 1_000_000.0 < 0.1,
            "rate {rate}"
        );
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let cdf = zipf_cdf(4, 0.0);
        for (j, c) in cdf.iter().enumerate() {
            assert!((c - (j + 1) as f64 / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mix_merges_by_start_time() {
        let spec = PatternSpec::Mix(vec![
            PatternSpec::Incast {
                fan_in: 4,
                epoch_nanos: 700_000,
                request_bytes: 2_000,
            },
            PatternSpec::Shuffle {
                flow_bytes: 50_000,
                wave_gap_nanos: 1_000_000,
            },
        ]);
        let flows = collect(&spec, 8, 9, 500);
        check_valid(&flows, 8);
        // Both parts must be represented: incast flows are 2 KB,
        // shuffle flows are 50 KB.
        let small = flows.iter().filter(|f| f.size_bytes == 2_000).count();
        let big = flows.iter().filter(|f| f.size_bytes == 50_000).count();
        assert_eq!(small + big, 500);
        assert!(small > 100 && big > 100, "both parts flow: {small}/{big}");
    }

    #[test]
    fn sized_wrapper_keeps_arrivals_and_redraws_sizes() {
        let base = PatternSpec::incast(8);
        let sized = PatternSpec::sized(base.clone(), SizeDistSpec::WebSearch);
        assert_eq!(sized.name(), "incast");
        let a = collect(&base, 16, 7, 300);
        let b = collect(&sized, 16, 7, 300);
        assert_eq!(a.len(), b.len());
        check_valid(&b, 16);
        let mut distinct = std::collections::HashSet::new();
        for (x, y) in a.iter().zip(&b) {
            // Everything but the size is the wrapped pattern's output.
            assert_eq!(x.start_nanos, y.start_nanos);
            assert_eq!(x.src_host, y.src_host);
            assert_eq!(x.dst_host, y.dst_host);
            assert_eq!(x.service, y.service);
            assert!((1_000..=30_000_000).contains(&y.size_bytes));
            distinct.insert(y.size_bytes);
        }
        assert!(distinct.len() > 50, "sizes vary: {}", distinct.len());
        // Deterministic under the same seed, distinct under another.
        assert_eq!(b, collect(&sized, 16, 7, 300));
        assert_ne!(b, collect(&sized, 16, 8, 300));
    }

    #[test]
    fn sized_wrapper_composes_with_mix() {
        let spec = PatternSpec::sized(
            PatternSpec::Mix(vec![PatternSpec::incast(4), PatternSpec::shuffle()]),
            SizeDistSpec::DataMining,
        );
        assert_eq!(spec.name(), "mix");
        let flows = collect(&spec, 8, 5, 200);
        check_valid(&flows, 8);
        // Heavy-tailed draws: fixed 20 KB / 100 KB sizes are gone.
        assert!(flows.iter().any(|f| f.size_bytes < 2_000));
        assert!(flows.iter().any(|f| f.size_bytes > 1_000_000));
    }

    #[test]
    fn streaming_is_o1_state() {
        // A million-flow stream materialises nothing: pulling from it
        // works element by element (this test pulls a slice of it).
        let spec = PatternSpec::incast(64);
        let mut it = spec.flows(1024, 1, 1_000_000);
        let first = it.next().unwrap();
        assert_eq!(first.flow_id, 0);
        let far = it.nth(99_998).unwrap();
        assert_eq!(far.flow_id, 100_000 - 1);
        assert!(far.start_nanos >= first.start_nanos);
    }

    #[test]
    #[should_panic(expected = "two hosts")]
    fn rejects_single_host() {
        PatternSpec::incast(4).flows(1, 0, 10);
    }
}
