//! Flow-size distributions.

use pmsb_simcore::rng::SimRng;

/// A distribution over flow sizes in bytes.
///
/// `Send` so boxed distributions can ride inside streaming flow sources
/// handed to worker shards.
pub trait FlowSizeDist: std::fmt::Debug + Send {
    /// Draws one flow size.
    fn sample(&self, rng: &mut SimRng) -> u64;

    /// The distribution's mean in bytes (used for load calibration).
    fn mean_bytes(&self) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Mean of a log-uniform distribution on `[lo, hi]`: `(hi-lo)/ln(hi/lo)`.
fn log_uniform_mean(lo: f64, hi: f64) -> f64 {
    (hi - lo) / (hi / lo).ln()
}

/// Draws log-uniformly from `[lo, hi]` — a heavy-tail-ish spread across
/// the class's byte range.
fn sample_log_uniform(rng: &mut SimRng, lo: f64, hi: f64) -> u64 {
    let u = rng.uniform();
    (lo * (hi / lo).powf(u)).round() as u64
}

/// The paper's workload mix: 60% small flows (< 100 KB), 30% medium
/// (100 KB – 10 MB), 10% large (> 10 MB), each class spread log-uniformly
/// over its range.
///
/// # Example
///
/// ```
/// use pmsb_simcore::rng::SimRng;
/// use pmsb_workload::{FlowSizeDist, PaperMix};
///
/// let mix = PaperMix::new();
/// let mut rng = SimRng::seed_from(5);
/// let s = mix.sample(&mut rng);
/// assert!(s >= 1_000 && s <= 100_000_000);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperMix;

impl PaperMix {
    /// Byte range of small flows.
    pub const SMALL: (f64, f64) = (1_000.0, 100_000.0);
    /// Byte range of medium flows.
    pub const MEDIUM: (f64, f64) = (100_000.0, 10_000_000.0);
    /// Byte range of large flows.
    pub const LARGE: (f64, f64) = (10_000_000.0, 100_000_000.0);
    /// Class probabilities (small, medium, large).
    pub const PROBS: (f64, f64, f64) = (0.6, 0.3, 0.1);

    /// Creates the mix.
    pub fn new() -> Self {
        PaperMix
    }
}

impl FlowSizeDist for PaperMix {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.uniform();
        let (lo, hi) = if u < Self::PROBS.0 {
            Self::SMALL
        } else if u < Self::PROBS.0 + Self::PROBS.1 {
            Self::MEDIUM
        } else {
            Self::LARGE
        };
        sample_log_uniform(rng, lo, hi).clamp(lo as u64, hi as u64)
    }

    fn mean_bytes(&self) -> f64 {
        Self::PROBS.0 * log_uniform_mean(Self::SMALL.0, Self::SMALL.1)
            + Self::PROBS.1 * log_uniform_mean(Self::MEDIUM.0, Self::MEDIUM.1)
            + Self::PROBS.2 * log_uniform_mean(Self::LARGE.0, Self::LARGE.1)
    }

    fn name(&self) -> &'static str {
        "paper-mix"
    }
}

/// An empirical CDF over flow sizes, sampled by inverse transform with
/// linear interpolation between knots.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    /// `(bytes, cumulative probability)` knots; strictly increasing in
    /// both coordinates, ending at probability 1.
    knots: Vec<(f64, f64)>,
    name: &'static str,
}

impl EmpiricalCdf {
    /// Builds from knots.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots, probabilities are not increasing
    /// from 0 to 1, or sizes are not increasing.
    pub fn new(knots: Vec<(f64, f64)>, name: &'static str) -> Self {
        assert!(knots.len() >= 2, "need at least two CDF knots");
        assert_eq!(knots[0].1, 0.0, "first knot must have probability 0");
        assert_eq!(
            knots.last().unwrap().1,
            1.0,
            "last knot must have probability 1"
        );
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 < w[1].1, "probabilities must increase");
        }
        EmpiricalCdf { knots, name }
    }

    fn inverse(&self, u: f64) -> f64 {
        let idx = self.knots.partition_point(|(_, p)| *p < u).max(1);
        let (x0, p0) = self.knots[idx - 1];
        let (x1, p1) = self.knots[idx.min(self.knots.len() - 1)];
        if p1 == p0 {
            return x0;
        }
        x0 + (x1 - x0) * (u - p0) / (p1 - p0)
    }
}

impl FlowSizeDist for EmpiricalCdf {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        self.inverse(rng.uniform()).round().max(1.0) as u64
    }

    fn mean_bytes(&self) -> f64 {
        // Piecewise-linear CDF => uniform within each segment: the mean is
        // the probability-weighted sum of segment midpoints.
        self.knots
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) * (w[0].0 + w[1].0) / 2.0)
            .sum()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The web-search workload CDF (DCTCP paper, Alizadeh et al.) commonly
/// used in datacenter transport evaluations: ~30% of flows under 10 KB but
/// most *bytes* from multi-megabyte flows.
#[derive(Debug, Clone, PartialEq)]
pub struct WebSearch(EmpiricalCdf);

impl WebSearch {
    /// Creates the distribution.
    pub fn new() -> Self {
        WebSearch(EmpiricalCdf::new(
            vec![
                (1_000.0, 0.0),
                (10_000.0, 0.15),
                (20_000.0, 0.20),
                (30_000.0, 0.30),
                (50_000.0, 0.40),
                (80_000.0, 0.53),
                (200_000.0, 0.60),
                (1_000_000.0, 0.70),
                (2_000_000.0, 0.80),
                (5_000_000.0, 0.90),
                (10_000_000.0, 0.97),
                (30_000_000.0, 1.0),
            ],
            "web-search",
        ))
    }
}

impl Default for WebSearch {
    fn default() -> Self {
        WebSearch::new()
    }
}

impl FlowSizeDist for WebSearch {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        self.0.sample(rng)
    }
    fn mean_bytes(&self) -> f64 {
        self.0.mean_bytes()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// The data-mining workload CDF (VL2 paper, Greenberg et al.): extremely
/// heavy-tailed — most flows are tiny, most bytes come from >100 MB flows.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMining(EmpiricalCdf);

impl DataMining {
    /// Creates the distribution.
    pub fn new() -> Self {
        DataMining(EmpiricalCdf::new(
            vec![
                (100.0, 0.0),
                (180.0, 0.10),
                (250.0, 0.20),
                (560.0, 0.30),
                (900.0, 0.40),
                (1_100.0, 0.50),
                (60_000.0, 0.60),
                (900_000.0, 0.70),
                (5_000_000.0, 0.80),
                (100_000_000.0, 0.90),
                (1_000_000_000.0, 1.0),
            ],
            "data-mining",
        ))
    }
}

impl Default for DataMining {
    fn default() -> Self {
        DataMining::new()
    }
}

impl FlowSizeDist for DataMining {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        self.0.sample(rng)
    }
    fn mean_bytes(&self) -> f64 {
        self.0.mean_bytes()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// A cloneable, comparable handle naming one of the built-in flow-size
/// distributions — the configuration-side counterpart of
/// [`FlowSizeDist`], usable inside `PartialEq` specs such as
/// [`crate::PatternSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDistSpec {
    /// The web-search CDF ([`WebSearch`]).
    WebSearch,
    /// The data-mining CDF ([`DataMining`]).
    DataMining,
    /// The paper's three-class mix ([`PaperMix`]).
    PaperMix,
}

impl SizeDistSpec {
    /// Short name for reports and CLI errors.
    pub fn name(&self) -> &'static str {
        match self {
            SizeDistSpec::WebSearch => "web-search",
            SizeDistSpec::DataMining => "data-mining",
            SizeDistSpec::PaperMix => "paper-mix",
        }
    }

    /// Instantiates the named distribution.
    pub fn build(&self) -> Box<dyn FlowSizeDist> {
        match self {
            SizeDistSpec::WebSearch => Box::new(WebSearch::new()),
            SizeDistSpec::DataMining => Box::new(DataMining::new()),
            SizeDistSpec::PaperMix => Box::new(PaperMix::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_dist_spec_builds_the_named_distribution() {
        for spec in [
            SizeDistSpec::WebSearch,
            SizeDistSpec::DataMining,
            SizeDistSpec::PaperMix,
        ] {
            let dist = spec.build();
            assert_eq!(dist.name(), spec.name());
            let mut rng = SimRng::seed_from(3);
            assert!(dist.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn paper_mix_class_proportions() {
        let mix = PaperMix::new();
        let mut rng = SimRng::seed_from(7);
        let n = 50_000;
        let mut small = 0;
        let mut large = 0;
        for _ in 0..n {
            let s = mix.sample(&mut rng);
            if s < 100_000 {
                small += 1;
            } else if s > 10_000_000 {
                large += 1;
            }
        }
        let fs = small as f64 / n as f64;
        let fl = large as f64 / n as f64;
        assert!((fs - 0.6).abs() < 0.02, "small fraction {fs}");
        assert!((fl - 0.1).abs() < 0.01, "large fraction {fl}");
    }

    #[test]
    fn paper_mix_mean_matches_samples() {
        let mix = PaperMix::new();
        let mut rng = SimRng::seed_from(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| mix.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let ana = mix.mean_bytes();
        assert!(
            (emp - ana).abs() / ana < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn web_search_mean_matches_samples() {
        let ws = WebSearch::new();
        let mut rng = SimRng::seed_from(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| ws.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let ana = ws.mean_bytes();
        assert!(
            (emp - ana).abs() / ana < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn data_mining_is_heavy_tailed() {
        let dm = DataMining::new();
        let mut rng = SimRng::seed_from(17);
        let samples: Vec<u64> = (0..50_000).map(|_| dm.sample(&mut rng)).collect();
        let median = {
            let mut s = samples.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Heavy tail: mean orders of magnitude above the median.
        assert!(median < 10_000, "median {median}");
        assert!(mean > 1_000_000.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "probability 0")]
    fn cdf_must_start_at_zero() {
        EmpiricalCdf::new(vec![(1.0, 0.5), (2.0, 1.0)], "bad");
    }

    #[test]
    #[should_panic(expected = "sizes must increase")]
    fn cdf_sizes_must_increase() {
        EmpiricalCdf::new(vec![(2.0, 0.0), (1.0, 1.0)], "bad");
    }

    /// Samples always fall within the distribution's support.
    #[test]
    fn samples_in_support() {
        for seed in 0..40u64 {
            let mut rng = SimRng::seed_from(seed);
            let ws = WebSearch::new();
            for _ in 0..50 {
                let s = ws.sample(&mut rng);
                assert!((1_000..=30_000_000).contains(&s));
            }
            let mix = PaperMix::new();
            for _ in 0..50 {
                let s = mix.sample(&mut rng);
                assert!((1_000..=100_000_000).contains(&s));
            }
        }
    }
}
