//! Traffic matrices: complete flow schedules for an experiment.

use pmsb_simcore::rng::SimRng;

use crate::arrivals::{arrival_rate_for_load, PoissonArrivals};
use crate::size::{FlowSizeDist, PaperMix};

/// One flow to inject: who, when, how much, and which service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Unique flow identifier.
    pub flow_id: u64,
    /// Sending host index.
    pub src_host: usize,
    /// Receiving host index (never equal to `src_host`).
    pub dst_host: usize,
    /// Service class in `[0, num_services)`; switches map it to a queue.
    pub service: usize,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Absolute start time in nanoseconds.
    pub start_nanos: u64,
}

/// Parameters of a randomized all-to-all workload — the paper's §VI-B
/// setup as a reusable generator.
#[derive(Debug)]
pub struct TrafficSpec {
    num_hosts: usize,
    num_services: usize,
    size_dist: Box<dyn FlowSizeDist>,
    arrival_rate_per_sec: f64,
}

impl TrafficSpec {
    /// Creates a spec from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two hosts, zero services, or a non-positive
    /// arrival rate.
    pub fn new(
        num_hosts: usize,
        num_services: usize,
        size_dist: Box<dyn FlowSizeDist>,
        arrival_rate_per_sec: f64,
    ) -> Self {
        assert!(num_hosts >= 2, "traffic needs at least two hosts");
        assert!(num_services >= 1, "need at least one service class");
        assert!(
            arrival_rate_per_sec.is_finite() && arrival_rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        TrafficSpec {
            num_hosts,
            num_services,
            size_dist,
            arrival_rate_per_sec,
        }
    }

    /// The paper's large-scale workload: `num_hosts` hosts at 10 Gbps
    /// each, 8 services, the 60/30/10 size mix, and Poisson arrivals
    /// calibrated to the given fractional `load`.
    pub fn paper_large_scale(num_hosts: usize, load: f64) -> Self {
        let dist = PaperMix::new();
        let cap = num_hosts as u64 * 10_000_000_000;
        let rate = arrival_rate_for_load(load, cap, dist.mean_bytes());
        TrafficSpec::new(num_hosts, 8, Box::new(dist), rate)
    }

    /// The configured arrival rate in flows per second.
    pub fn arrival_rate_per_sec(&self) -> f64 {
        self.arrival_rate_per_sec
    }

    /// The flow-size distribution.
    pub fn size_dist(&self) -> &dyn FlowSizeDist {
        self.size_dist.as_ref()
    }

    /// Generates `num_flows` flows: Poisson start times, uniform random
    /// source/destination pairs (src ≠ dst), sizes from the distribution,
    /// services assigned uniformly.
    pub fn generate(&self, num_flows: usize, rng: &mut SimRng) -> Vec<FlowSpec> {
        let mut arrivals = PoissonArrivals::with_rate(self.arrival_rate_per_sec);
        (0..num_flows)
            .map(|i| {
                let start_nanos = arrivals.next_arrival_nanos(rng);
                let src_host = rng.below(self.num_hosts);
                let mut dst_host = rng.below(self.num_hosts - 1);
                if dst_host >= src_host {
                    dst_host += 1;
                }
                FlowSpec {
                    flow_id: i as u64,
                    src_host,
                    dst_host,
                    service: rng.below(self.num_services),
                    size_bytes: self.size_dist.sample(rng),
                    start_nanos,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_flows() {
        let spec = TrafficSpec::paper_large_scale(48, 0.5);
        let mut rng = SimRng::seed_from(1);
        let flows = spec.generate(500, &mut rng);
        assert_eq!(flows.len(), 500);
        for f in &flows {
            assert!(f.src_host < 48);
            assert!(f.dst_host < 48);
            assert_ne!(f.src_host, f.dst_host);
            assert!(f.service < 8);
            assert!(f.size_bytes >= 1_000);
        }
        // Start times non-decreasing and flow ids unique.
        assert!(flows
            .windows(2)
            .all(|w| w[0].start_nanos <= w[1].start_nanos));
    }

    #[test]
    fn services_spread_evenly() {
        let spec = TrafficSpec::paper_large_scale(48, 0.5);
        let mut rng = SimRng::seed_from(2);
        let flows = spec.generate(16_000, &mut rng);
        let mut counts = [0usize; 8];
        for f in &flows {
            counts[f.service] += 1;
        }
        for c in counts {
            let frac = c as f64 / 16_000.0;
            assert!((frac - 0.125).abs() < 0.02, "service fraction {frac}");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let spec = TrafficSpec::paper_large_scale(16, 0.3);
        let a = spec.generate(100, &mut SimRng::seed_from(42));
        let b = spec.generate(100, &mut SimRng::seed_from(42));
        assert_eq!(a, b);
    }

    #[test]
    fn load_scales_arrival_density() {
        let lo = TrafficSpec::paper_large_scale(48, 0.1);
        let hi = TrafficSpec::paper_large_scale(48, 0.8);
        let mut rng = SimRng::seed_from(3);
        let span = |flows: &[FlowSpec]| flows.last().unwrap().start_nanos;
        let t_lo = span(&lo.generate(2000, &mut rng));
        let t_hi = span(&hi.generate(2000, &mut rng));
        // Same flow count at 8x the rate finishes arriving ~8x sooner.
        let ratio = t_lo as f64 / t_hi as f64;
        assert!((ratio - 8.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "two hosts")]
    fn rejects_single_host() {
        TrafficSpec::new(1, 8, Box::new(PaperMix::new()), 100.0);
    }

    /// src != dst always holds and both are in range, for seeded-random
    /// host counts and generator seeds.
    #[test]
    fn pairs_valid() {
        let mut meta = SimRng::seed_from(0x7f);
        for _ in 0..24 {
            let seed = meta.next_u64() % 200;
            let hosts = 2 + meta.below(62);
            let spec = TrafficSpec::new(hosts, 4, Box::new(PaperMix::new()), 1000.0);
            let flows = spec.generate(50, &mut SimRng::seed_from(seed));
            for f in flows {
                assert!(f.src_host < hosts && f.dst_host < hosts);
                assert_ne!(f.src_host, f.dst_host);
            }
        }
    }
}
