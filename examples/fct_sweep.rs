//! A miniature version of the paper's large-scale evaluation: flow
//! completion times on a 48-host leaf–spine fabric under two marking
//! schemes.
//!
//! ```sh
//! cargo run --release --example fct_sweep
//! ```
//!
//! Poisson arrivals of the paper's 60/30/10 size mix at 40% load; PMSB
//! versus TCN over DWRR. Expect similar large-flow FCTs but clearly
//! better small-flow tails under PMSB.

use pmsb::MarkPoint;
use pmsb_metrics::fct::SizeClass;
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::traffic::TrafficSpec;

fn run(marking: MarkingConfig, mark_point: MarkPoint, label: &str) {
    let spec = TrafficSpec::paper_large_scale(48, 0.4);
    let mut rng = SimRng::seed_from(7);
    let flows = spec.generate(400, &mut rng);

    let mut exp = Experiment::paper_leaf_spine()
        .marking(marking)
        .mark_point(mark_point);
    for f in &flows {
        exp.add_flow(
            FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                .starting_at(f.start_nanos),
        );
    }
    let end = flows.last().unwrap().start_nanos + 1_000_000_000;
    let res = exp.run_until_nanos(end);

    println!("{label}");
    println!("  completed {}/{} flows", res.fct.len(), flows.len());
    for class in [SizeClass::Small, SizeClass::Large] {
        if let Some(s) = res.fct.stats(class) {
            println!(
                "  {class:<7} avg {:>9.1} us   p95 {:>9.1} us   p99 {:>9.1} us",
                s.mean / 1e3,
                s.p95 / 1e3,
                s.p99 / 1e3
            );
        }
    }
}

fn main() {
    println!("48-host leaf-spine, load 0.4, 400 flows, DWRR\n");
    run(
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        MarkPoint::Enqueue,
        "PMSB (port K = 12 pkts)",
    );
    run(
        MarkingConfig::Tcn {
            threshold_nanos: 78_200,
        },
        MarkPoint::Dequeue,
        "TCN (T_k = 78.2 us)",
    );
}
