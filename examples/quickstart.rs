//! Quickstart: run PMSB on a two-queue bottleneck and look at the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Two senders share one 10 Gbps switch port through different service
//! queues. The port marks ECN with PMSB (Algorithm 1): per-port threshold
//! 12 packets, per-queue filter thresholds derived from the DWRR weights.

use pmsb_metrics::fct::SizeClass;
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};

fn main() {
    // 2 senders -> 1 receiver (host index 2) through one switch.
    let mut exp = Experiment::dumbbell(2, 2)
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .scheduler(SchedulerConfig::Dwrr {
            weights: vec![1, 1],
        })
        .watch_bottleneck(100_000); // sample the bottleneck every 100 us

    // A 20 MB bulk transfer in queue 0 and a burst of small flows in
    // queue 1 — the small flows should not suffer from the elephant.
    exp.add_flow(FlowDesc::bulk(0, 2, 0, 20_000_000));
    for i in 0..20 {
        exp.add_flow(FlowDesc::bulk(1, 2, 1, 50_000).starting_at(i * 1_000_000));
    }

    let result = exp.run_for_millis(60);

    println!("flows completed : {}", result.fct.len());
    println!("ECN marks       : {}", result.marks);
    println!("packet drops    : {}", result.drops);

    if let Some(small) = result.fct.stats(SizeClass::Small) {
        println!(
            "small flows     : avg {:.0} us, p99 {:.0} us",
            small.mean / 1e3,
            small.p99 / 1e3
        );
    }
    if let Some(large) = result.fct.stats(SizeClass::Large) {
        println!(
            "large flow      : {:.1} ms ({:.2} Gbps goodput)",
            large.mean / 1e6,
            20_000_000.0 * 8.0 / large.mean
        );
    }

    // The bottleneck trace shows how the buffer behaved.
    let trace = &result.port_traces[&(0, 2)];
    println!(
        "buffer peak     : {:.0} packets (port threshold was 12)",
        trace.port_occupancy_pkts.peak().unwrap_or(0.0)
    );
}
