//! PMSB works over *generic* packet schedulers (paper §VI-A.3).
//!
//! ```sh
//! cargo run --release --example scheduler_zoo
//! ```
//!
//! The same three-queue traffic pattern runs under DWRR, WFQ, SP and
//! SP+WFQ with PMSB marking; the steady-state shares follow each
//! scheduling policy, demonstrating that selective blindness does not
//! fight the scheduler (MQ-ECN, by contrast, cannot run on WFQ or SP at
//! all — it needs a round-based scheduler).

use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};

fn run(scheduler: SchedulerConfig, label: &str, expect: &str) {
    let mut exp = Experiment::dumbbell(6, 3)
        .scheduler(scheduler)
        .marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        })
        .watch_bottleneck(100_000);
    // Queue 0: a 5 Gbps app-limited flow; queue 1: one unbounded flow;
    // queue 2: four unbounded flows.
    exp.add_flow(FlowDesc::long_lived(0, 6, 0).with_app_rate_bps(5_000_000_000));
    exp.add_flow(FlowDesc::long_lived(1, 6, 1));
    for s in 2..6 {
        exp.add_flow(FlowDesc::long_lived(s, 6, 2));
    }
    let res = exp.run_for_millis(40);
    let trace = &res.port_traces[&(0, 6)];
    let shares: Vec<String> = (0..3)
        .map(|q| {
            let bins = trace.queue_throughput[q].num_bins();
            if bins < 2 {
                "0.0".to_string() // starved queue: no bytes ever dequeued
            } else {
                format!("{:.1}", trace.mean_queue_gbps(q, bins / 2, bins))
            }
        })
        .collect();
    println!(
        "{label:<8} queues = [{}] Gbps   (policy says {expect})",
        shares.join(", ")
    );
}

fn main() {
    println!("3 queues: q0 = 5G app-limited, q1 = 1 flow, q2 = 4 flows; 10 Gbps port\n");
    // Under 1:1:1 fair queueing, q0's 5 Gbps demand exceeds its 3.33 Gbps
    // share, so every queue gets one third.
    run(
        SchedulerConfig::Dwrr {
            weights: vec![1; 3],
        },
        "DWRR",
        "~3.3 / 3.3 / 3.3 — all demands exceed the 1/3 share",
    );
    run(
        SchedulerConfig::Wfq {
            weights: vec![1; 3],
        },
        "WFQ",
        "~3.3 / 3.3 / 3.3",
    );
    run(
        SchedulerConfig::Sp { num_queues: 3 },
        "SP",
        "~5.1 / 4.9 / 0 — strict priority starves q2",
    );
    run(
        SchedulerConfig::SpWfq {
            group_of: vec![0, 1, 1],
            weights: vec![1; 3],
        },
        "SP+WFQ",
        "~5.1 / 2.4 / 2.4 — q0 strictly first, rest fair",
    );
}
