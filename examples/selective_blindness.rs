//! Using the `pmsb` core library directly — no simulator.
//!
//! ```sh
//! cargo run --example selective_blindness
//! ```
//!
//! The `pmsb` crate is a pure decision library: a switch implementor (or
//! another simulator) feeds it port state and gets marking decisions. This
//! example walks through Algorithm 1 (switch side), Algorithm 2 (PMSB(e),
//! host side) and the Theorem IV.1 threshold derivation.

use pmsb::analysis;
use pmsb::endpoint::{BaseRttTracker, SelectiveBlindness};
use pmsb::marking::{MarkingScheme, Pmsb};
use pmsb::PortSnapshot;

fn main() {
    // ------------------------------------------------------------------
    // 1. Derive thresholds from the fabric parameters (Theorem IV.1).
    // ------------------------------------------------------------------
    let link = 10_000_000_000; // 10 Gbps
    let rtt = 85_200; // ns
    let weights = vec![1u64; 8];
    let bound_bytes = analysis::theorem_iv1_min_threshold_bytes(1, 8, link, rtt);
    let port_threshold = analysis::pmsb_port_threshold_bytes(&weights, link, rtt, 1.0);
    println!(
        "per-queue lower bound : {:.0} bytes (> gamma*C*RTT/7)",
        bound_bytes
    );
    println!(
        "derived port threshold: {port_threshold} bytes (~{} pkts)\n",
        port_threshold / 1500
    );

    // ------------------------------------------------------------------
    // 2. Switch side: Algorithm 1 over a congested port.
    // ------------------------------------------------------------------
    let mut scheme = Pmsb::new(port_threshold, weights);
    let view = PortSnapshot::builder(8)
        .queue_bytes(0, 14 * 1500) // a hot queue
        .queue_bytes(1, 1500) // a victim queue
        .link_rate_bps(link)
        .build();
    println!("port occupancy        : {} bytes", 15 * 1500);
    println!(
        "queue 0 (14 pkts)     : {:?}  <- genuinely congested",
        scheme.should_mark(&view, 0)
    );
    println!(
        "queue 1 (1 pkt)       : {:?}  <- victim, selectively blind\n",
        scheme.should_mark(&view, 1)
    );

    // ------------------------------------------------------------------
    // 3. Host side: PMSB(e), Algorithm 2.
    // ------------------------------------------------------------------
    let mut base = BaseRttTracker::new();
    for sample in [88_000u64, 86_500, 85_900, 101_000] {
        base.observe(sample);
    }
    let rule = SelectiveBlindness::from_base_rtt(base.base_rtt_nanos().unwrap(), 1.2);
    println!(
        "base RTT              : {} ns",
        base.base_rtt_nanos().unwrap()
    );
    println!("PMSB(e) threshold     : {} ns", rule.rtt_threshold_nanos());
    println!(
        "mark at RTT 90 us     : ignore = {}",
        rule.ignore_mark(true, 90_000)
    );
    println!(
        "mark at RTT 150 us    : ignore = {}",
        rule.ignore_mark(true, 150_000)
    );
}
