//! The victim-flow problem and how PMSB fixes it (paper Figs. 3 and 8).
//!
//! ```sh
//! cargo run --release --example weighted_fair_sharing
//! ```
//!
//! One flow in queue 1 competes with eight flows in queue 2 under a 1:1
//! DWRR schedule. Plain per-port ECN marks the lone flow for congestion
//! it did not cause (its packets see a full *port*, not a full *queue*),
//! so it backs off and loses its fair share. PMSB's per-queue filter
//! threshold spares it — "selective blindness".

use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig};

fn shares(marking: MarkingConfig, label: &str) {
    let mut exp = Experiment::dumbbell(9, 2)
        .marking(marking)
        .watch_bottleneck(100_000);
    // Queue 0: one flow; queue 1: eight flows, all long-lived.
    exp.add_flow(FlowDesc::long_lived(0, 9, 0));
    for s in 1..9 {
        exp.add_flow(FlowDesc::long_lived(s, 9, 1));
    }
    let res = exp.run_for_millis(50);
    let trace = &res.port_traces[&(0, 9)];
    let bins = trace.queue_throughput[0].num_bins();
    let q1 = trace.mean_queue_gbps(0, bins / 4, bins);
    let q2 = trace.mean_queue_gbps(1, bins / 4, bins);
    println!("{label:<22} queue1 = {q1:.2} Gbps, queue2 = {q2:.2} Gbps");
}

fn main() {
    println!("1 flow (queue 1) vs 8 flows (queue 2), DWRR 1:1, 10 Gbps bottleneck\n");
    // Expected ~1.5-2.5 / 7.5-8.5: the lone flow is a victim.
    shares(
        MarkingConfig::PerPort { threshold_pkts: 16 },
        "per-port K=16:",
    );
    // Expected ~5 / 5: selective blindness protects the victim.
    shares(
        MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        },
        "PMSB port K=12:",
    );
}
