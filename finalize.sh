#!/bin/bash
cd /root/repo
until grep -q "all experiments done" experiments_full.txt 2>/dev/null; do sleep 15; done
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt > /dev/null
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt > /dev/null
echo FINALIZE_COMPLETE
