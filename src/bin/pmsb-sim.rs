//! `pmsb-sim` — run custom PMSB experiments from the command line.
//!
//! ```text
//! pmsb-sim dumbbell --senders 8 --queues 2 --marking pmsb:12 \
//!     --flow "0>8:0:u" --flow "1>8:1:u" --millis 50 --watch true
//!
//! pmsb-sim leaf-spine --load 0.5 --flows 400 --marking tcn:78200 \
//!     --scheduler dwrr:1,1,1,1,1,1,1,1 --seed 42
//!
//! pmsb-sim leaf-spine --load 0.3 --flows 400 \
//!     --fault-schedule examples/uplink_flap.faults
//!
//! pmsb-sim profile --rate-gbps 10 --rtt-us 85.2 --weights 1,1,1,1,1,1,1,1
//!
//! pmsb-sim campaign all --quick --jobs 4
//! ```
//!
//! Sub-grammars (sizes, flows, schemes, schedulers) are documented in
//! [`pmsb_repro::cli`]; campaigns come from [`pmsb_bench::campaigns`].

use std::process::ExitCode;

use pmsb::profile::PmsbProfile;
use pmsb::MarkPoint;
use pmsb_metrics::fct::SizeClass;
use pmsb_netsim::experiment::{Experiment, FaultSchedule, FlowDesc};
use pmsb_repro::cli::{
    parse_buffer, parse_engine, parse_flow, parse_marking, parse_partition, parse_pattern,
    parse_scheduler, parse_sim_threads, parse_topology, parse_transport, parse_weights,
    split_options, ParseError, TopologySpec,
};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::traffic::TrafficSpec;

const HELP: &str = "\
pmsb-sim — PMSB datacenter ECN experiments

USAGE:
  pmsb-sim dumbbell  [--senders N] [--queues N] [--marking SPEC]
                     [--scheduler SPEC] [--mark-point enq|deq]
                     [--pmsbe-us X] [--transport dctcp|newreno]
                     [--engine ENGINE] [--buffer SPEC]
                     [--rate-gbps N] [--delay-ns N]
                     [--millis N] [--watch true] [--fault-schedule FILE]
                     [--sim-threads N|auto] [--partition traffic|contiguous]
                     --flow SPEC [--flow SPEC ...]
  pmsb-sim leaf-spine [--load X] [--flows N] [--seed N] [--marking SPEC]
                     [--scheduler SPEC] [--mark-point enq|deq] [--pmsbe-us X]
                     [--transport dctcp|newreno] [--engine ENGINE]
                     [--buffer SPEC] [--fault-schedule FILE]
                     [--sim-threads N|auto] [--partition traffic|contiguous]
  pmsb-sim fabric    [--topology leaf-spine|fat-tree:K] [--pattern SPEC]
                     [--flows N] [--seed N] [--exact true] [--drain-ms N]
                     [--marking SPEC] [--scheduler SPEC] [--pmsbe-us X]
                     [--transport dctcp|newreno] [--engine ENGINE]
                     [--buffer SPEC] [--sim-threads N|auto]
                     [--partition traffic|contiguous]
  pmsb-sim profile   --rtt-us X --weights W1,W2,... [--rate-gbps N]
                     [--lambda X] [--margin X]
  pmsb-sim campaign  NAME [--quick] [--jobs N] [--results DIR] [--quiet]
                     [--sim-threads N|auto] [--partition traffic|contiguous]
                     [--engine ENGINE] [--buffer SPEC]
                     NAME: all | figures | extensions | large-scale-dwrr
                     | large-scale-wfq | seed-sensitivity | faults
                     | transport | hyperscale | hyperscale-k24
                     | hyperscale-k24-regional | buffers
                     | any scenario (e.g. fig08, ablation_port_threshold)
  pmsb-sim help

  --sim-threads shards one simulation across N worker threads ('auto'
  = every hardware thread, capped at the switch count). The protocol is
  conservative with per-LP lookahead horizons; results are byte-identical
  to --sim-threads 1, see DESIGN.md section 8. --partition picks how
  switches map to threads: 'traffic' (default) grows balanced partitions
  weighted by the workload's expected traffic, 'contiguous' uses plain
  switch-index ranges. The partition never changes results either.

  --engine picks the simulation engine (ENGINE below): 'packet'
  (default, event per packet), 'fluid' (flow-level max-min rates with
  steady-state marking curves), 'hybrid' (fluid rates plus per-port
  packet micro-sims calibrating the marking — the 10-100x hyperscale
  fast path, DESIGN.md section 11), or 'regional[:auto|:ports=S:P,..]'
  (one run with a hot set of switch ports at full packet level — real
  scheduler, marking, shared pool, PMSB(e) filter — and fluid rates
  everywhere else, DESIGN.md section 13; 'auto' scouts the hot set with
  a deterministic first fluid pass). The fluid/hybrid/regional engines
  do not support fault schedules and ignore --sim-threads (they are
  single-threaded and deterministic; a one-line note says so).

  --buffer picks the switch buffer allocation (DESIGN.md section 12):
  'static' (default, private per-port buffers), 'dt:ALPHA' (per-switch
  shared pool, Dynamic-Threshold admission), or 'delay[:MICROS]'
  (shared pool, BShare-style delay-driven caps, default 100 us). The
  shared policies need the packet or regional engine.

  fabric streams a traffic pattern (lazy flow injection, slab flow
  state, sketch FCT percentiles) over the chosen topology; --exact true
  additionally records every flow and prints one 'flow,...' line each
  (the byte-comparable determinism witness used by CI).

SPECS:
  marking    none | pmsb:K | per-port:K | per-queue:K | per-queue-frac:K
             | pool:K | mq-ecn:K | tcn:NANOS | red:MIN,MAX,P     (K in packets)
  scheduler  fifo | sp:N | wrr:W,.. | dwrr:W,.. | wfq:W,.. | spwfq:G,..;W,..
  buffer     static | dt:ALPHA | delay[:MICROS]
  engine     packet | fluid | hybrid | regional[:auto|:ports=S:P[,S:P...]]
  topology   leaf-spine | fat-tree:K            (K even >= 4; k=16 is 1024 hosts)
  pattern    incast[:FAN] | shuffle | hotservice[:EXP] | mix    each may take
             an @DIST size suffix: @web-search | @data-mining | @paper-mix
             (flow sizes drawn from the paper's CDFs, e.g. shuffle@web-search)
  flow       SRC>DST:SERVICE:SIZE[@START_US][/RATE_GBPS]
             SIZE takes K/M/G suffixes or 'u' for long-lived
  fault file line-oriented: 'seed N' then 'at TIME VERB TARGET [ARG]' lines,
             e.g. 'at 10ms link-down switch:0:4' — see examples/*.faults
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

fn opt<'a>(options: &'a [(String, String)], key: &str) -> Option<&'a str> {
    options
        .iter()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn opt_parse<T: std::str::FromStr>(
    options: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, ParseError> {
    match opt(options, key) {
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|_| ParseError(format!("bad value for --{key}: '{v}'"))),
    }
}

fn run(args: &[String]) -> Result<(), ParseError> {
    // `campaign` uses the harness flag grammar (valueless `--quick` /
    // `--quiet`), so it is dispatched before `split_options`.
    if args.first().map(String::as_str) == Some("campaign") {
        return campaign(&args[1..]);
    }
    let (positional, options) = split_options(args)?;
    match positional.first().map(String::as_str) {
        Some("dumbbell") => dumbbell(&options),
        Some("leaf-spine") => leaf_spine(&options),
        Some("fabric") => fabric(&options),
        Some("profile") => profile(&options),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

/// `pmsb-sim campaign NAME [--quick] [--jobs N] [--results DIR] [--quiet]`:
/// runs a harness campaign (resumable, parallel) and prints its report.
fn campaign(args: &[String]) -> Result<(), ParseError> {
    let (opts, rest) = pmsb_harness::RunOptions::take_flags(args.to_vec()).map_err(ParseError)?;
    let mut quick = false;
    let mut name: Option<String> = None;
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--sim-threads" => match rest.next() {
                Some(v) => pmsb_bench::util::set_sim_threads(parse_sim_threads(&v)?),
                None => {
                    return Err(ParseError(
                        "campaign: --sim-threads needs an integer >= 1, or auto".into(),
                    ))
                }
            },
            "--partition" => match rest.next() {
                Some(v) => pmsb_bench::util::set_partition(parse_partition(&v)?),
                None => {
                    return Err(ParseError(
                        "campaign: --partition needs traffic|contiguous".into(),
                    ))
                }
            },
            "--engine" => {
                match rest.next() {
                    Some(v) => {
                        let (kind, region) = parse_engine(&v)?;
                        pmsb_bench::util::set_engine(kind);
                        pmsb_bench::util::set_region(region);
                    }
                    None => return Err(ParseError(
                        "campaign: --engine needs packet|fluid|hybrid|regional[:auto|:ports=...]"
                            .into(),
                    )),
                }
            }
            "--buffer" => match rest.next() {
                Some(v) => pmsb_bench::util::set_buffer_policy(parse_buffer(&v)?),
                None => {
                    return Err(ParseError(
                        "campaign: --buffer needs static|dt:ALPHA|delay[:MICROS]".into(),
                    ))
                }
            },
            other if !other.starts_with("--") && name.is_none() => name = Some(other.to_string()),
            other => {
                return Err(ParseError(format!(
                    "campaign: unexpected argument '{other}'"
                )))
            }
        }
    }
    let Some(name) = name else {
        return Err(ParseError(format!(
            "campaign needs a name: {} or an individual scenario",
            pmsb_bench::campaigns::CAMPAIGN_NAMES.join(" | ")
        )));
    };
    let Some(c) = pmsb_bench::campaigns::campaign_by_name(&name, quick) else {
        return Err(ParseError(format!(
            "unknown campaign '{name}' (try {} or a scenario like fig08)",
            pmsb_bench::campaigns::CAMPAIGN_NAMES.join(" | ")
        )));
    };
    let total = c.len();
    let result = c.run(&opts).map_err(|e| ParseError(e.to_string()))?;
    pmsb_bench::campaigns::print_campaign_output(&result);
    if !result.is_success() {
        for f in &result.failures {
            eprintln!("campaign: job {} failed: {}", f.key, f.error);
        }
        return Err(ParseError(format!(
            "{} of {total} jobs failed",
            result.failures.len()
        )));
    }
    Ok(())
}

fn apply_common(mut e: Experiment, options: &[(String, String)]) -> Result<Experiment, ParseError> {
    if let Some(m) = opt(options, "marking") {
        e = e.marking(parse_marking(m)?);
    }
    if let Some(s) = opt(options, "scheduler") {
        e = e.scheduler(parse_scheduler(s)?);
    }
    match opt(options, "mark-point") {
        Some("enq") | None => {}
        Some("deq") => e = e.mark_point(MarkPoint::Dequeue),
        Some(other) => return Err(ParseError(format!("bad --mark-point '{other}'"))),
    }
    if let Some(us) = opt(options, "pmsbe-us") {
        let v: f64 = us
            .parse()
            .map_err(|_| ParseError(format!("bad --pmsbe-us '{us}'")))?;
        e = e.pmsbe_rtt_threshold_nanos((v * 1e3) as u64);
    }
    if let Some(t) = opt(options, "transport") {
        e = e.transport_kind(parse_transport(t)?);
    }
    if let Some(en) = opt(options, "engine") {
        let (kind, region) = parse_engine(en)?;
        e = e.engine(kind).region(region);
    }
    if let Some(b) = opt(options, "buffer") {
        e = e.buffer(parse_buffer(b)?);
    }
    if let Some(path) = opt(options, "fault-schedule") {
        let text = std::fs::read_to_string(path)
            .map_err(|io| ParseError(format!("cannot read fault schedule '{path}': {io}")))?;
        let schedule = FaultSchedule::parse(&text)
            .map_err(|e| ParseError(format!("fault schedule '{path}': {e}")))?;
        e = e.faults(schedule);
    }
    if let Some(t) = opt(options, "sim-threads") {
        e = e.sim_threads(parse_sim_threads(t)?);
    }
    if let Some(p) = opt(options, "partition") {
        e = e.partition(parse_partition(p)?);
    }
    Ok(e)
}

fn report(res: &pmsb_netsim::experiment::ExperimentResult) {
    println!("completed_flows,{}", res.fct.len());
    println!("marks,{}", res.marks);
    println!("drops,{}", res.drops);
    if let Some(sb) = &res.shared_buffer {
        println!("shared_drops,{}", sb.shared_drops);
        println!("admit_rejects,{}", sb.admit_rejects);
        println!(
            "pool_high_water,{}/{}",
            sb.pool_high_water_bytes, sb.pool_total_bytes
        );
    }
    if let Some(fr) = &res.faults {
        println!("fault_injected_drops,{}", fr.injected_drops);
        println!("fault_corrupt_drops,{}", fr.corrupt_drops);
        println!("fault_unroutable_drops,{}", fr.unroutable_drops);
        println!(
            "fault_link_events,down={},up={}",
            fr.link_down_events, fr.link_up_events
        );
        for (nanos, desc) in &fr.log {
            println!("fault_log,{:.3}ms,{desc}", *nanos as f64 / 1e6);
        }
    }
    for class in [
        SizeClass::Small,
        SizeClass::Medium,
        SizeClass::Large,
        SizeClass::Overall,
    ] {
        if let Some(s) = res.fct.stats(class) {
            println!(
                "fct_{class},n={},avg_us={:.1},p95_us={:.1},p99_us={:.1}",
                s.count,
                s.mean / 1e3,
                s.p95 / 1e3,
                s.p99 / 1e3
            );
        }
    }
}

fn dumbbell(options: &[(String, String)]) -> Result<(), ParseError> {
    let senders: usize = opt_parse(options, "senders", 2)?;
    let queues: usize = opt_parse(options, "queues", 2)?;
    let millis: u64 = opt_parse(options, "millis", 50)?;
    let watch: bool = opt_parse(options, "watch", false)?;
    let mut e = Experiment::dumbbell(senders, queues);
    if let Some(g) = opt(options, "rate-gbps") {
        let v: u64 = g
            .parse()
            .map_err(|_| ParseError(format!("bad --rate-gbps '{g}'")))?;
        e = e.link_rate_gbps(v);
    }
    if let Some(d) = opt(options, "delay-ns") {
        let v: u64 = d
            .parse()
            .map_err(|_| ParseError(format!("bad --delay-ns '{d}'")))?;
        e = e.link_delay_nanos(v);
    }
    e = apply_common(e, options)?;
    if watch {
        e = e.watch_bottleneck(100_000);
    }
    let flows: Vec<FlowDesc> = options
        .iter()
        .filter(|(k, _)| k == "flow")
        .map(|(_, v)| parse_flow(v))
        .collect::<Result<_, _>>()?;
    if flows.is_empty() {
        return Err(ParseError("dumbbell needs at least one --flow".into()));
    }
    e.add_flows(flows);
    let res = e.run_for_millis(millis);
    report(&res);
    if watch {
        let trace = &res.port_traces[&(0, senders)];
        for q in 0..queues {
            let bins = trace.queue_throughput[q].num_bins();
            let gbps = if bins >= 2 {
                trace.mean_queue_gbps(q, bins / 4, bins)
            } else {
                0.0
            };
            println!("queue_{q}_gbps,{gbps:.3}");
        }
        println!(
            "port_occupancy_peak_pkts,{:.1}",
            trace.port_occupancy_pkts.peak().unwrap_or(0.0)
        );
    }
    Ok(())
}

fn leaf_spine(options: &[(String, String)]) -> Result<(), ParseError> {
    let load: f64 = opt_parse(options, "load", 0.5)?;
    let flows: usize = opt_parse(options, "flows", 400)?;
    let seed: u64 = opt_parse(options, "seed", 42)?;
    if !(0.0..=1.0).contains(&load) || load == 0.0 {
        return Err(ParseError(format!("--load must be in (0,1], got {load}")));
    }
    let mut e = Experiment::paper_leaf_spine();
    e = apply_common(e, options)?;
    let spec = TrafficSpec::paper_large_scale(48, load);
    let mut rng = SimRng::seed_from(seed);
    let generated = spec.generate(flows, &mut rng);
    let last = generated.last().map(|f| f.start_nanos).unwrap_or(0);
    for f in &generated {
        e.add_flow(
            FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                .starting_at(f.start_nanos),
        );
    }
    let res = e.run_until_nanos(last + 1_000_000_000);
    report(&res);
    Ok(())
}

/// `pmsb-sim fabric`: stream a traffic pattern over a topology. Per-flow
/// state lives in the recycled slab and FCTs go into the quantile
/// sketch, so memory is bounded by *concurrent* flows — `--flows` can be
/// millions. `--exact true` additionally records every completed flow
/// exhaustively and prints one `flow,...` line each; CI byte-compares
/// that output across `--sim-threads` values.
fn fabric(options: &[(String, String)]) -> Result<(), ParseError> {
    let topo = match opt(options, "topology") {
        Some(t) => parse_topology(t)?,
        None => TopologySpec::FatTree { k: 4 },
    };
    let pattern = match opt(options, "pattern") {
        Some(p) => parse_pattern(p)?,
        None => parse_pattern("incast")?,
    };
    let flows: u64 = opt_parse(options, "flows", 2_000)?;
    let seed: u64 = opt_parse(options, "seed", 42)?;
    let exact: bool = opt_parse(options, "exact", false)?;
    let drain_ms: u64 = opt_parse(options, "drain-ms", 50)?;
    if flows == 0 {
        return Err(ParseError("--flows must be >= 1".into()));
    }
    let e = match topo {
        TopologySpec::LeafSpine => Experiment::paper_leaf_spine(),
        TopologySpec::FatTree { k } => Experiment::fat_tree(k),
    };
    let mut e = apply_common(e, options)?;
    let num_hosts = e.num_hosts();
    let last = pattern
        .flows(num_hosts, seed, flows)
        .last()
        .map(|f| f.start_nanos)
        .unwrap_or(0);
    e = e.stream(pattern, seed, flows);
    if exact {
        e = e.stream_record_exact();
    }
    let res = e.run_until_nanos(last + drain_ms * 1_000_000);
    let s = res.stream.as_ref().expect("fabric runs in streaming mode");
    println!("hosts,{num_hosts}");
    println!("injected,{}", s.injected);
    println!("completed,{}", s.completed);
    println!("bytes_completed,{}", s.bytes_completed);
    for (name, p) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        match s.sketch.quantile(p) {
            Some(n) => println!("fct_{name}_us,{:.1}", n as f64 / 1e3),
            None => println!("fct_{name}_us,nan"),
        }
    }
    println!("marks,{}", res.marks);
    println!("drops,{}", res.drops);
    println!("marks_seen,{}", s.agg_sender.marks_seen);
    println!("marks_ignored,{}", s.agg_sender.marks_ignored);
    if let Some(sb) = &res.shared_buffer {
        println!("shared_drops,{}", sb.shared_drops);
        println!("admit_rejects,{}", sb.admit_rejects);
        println!(
            "pool_high_water,{}/{}",
            sb.pool_high_water_bytes, sb.pool_total_bytes
        );
    }
    if exact {
        for r in res.fct.records() {
            println!(
                "flow,{},{},{},{}",
                r.flow_id, r.bytes, r.start_nanos, r.end_nanos
            );
        }
    }
    // Stderr, not stdout: on sharded runs this is the sum of per-shard
    // peaks (an upper bound taken at different instants), the one number
    // that may differ across --sim-threads values.
    eprintln!("slab_high_water,{}", s.slab_high_water);
    Ok(())
}

fn profile(options: &[(String, String)]) -> Result<(), ParseError> {
    let rate_gbps: f64 = opt_parse(options, "rate-gbps", 10.0)?;
    let Some(rtt_us) = opt(options, "rtt-us") else {
        return Err(ParseError("profile needs --rtt-us".into()));
    };
    let rtt_us: f64 = rtt_us
        .parse()
        .map_err(|_| ParseError("bad --rtt-us".into()))?;
    let Some(weights) = opt(options, "weights") else {
        return Err(ParseError("profile needs --weights".into()));
    };
    let weights = parse_weights(weights)?;
    let mut b = PmsbProfile::builder()
        .link_rate_bps((rate_gbps * 1e9) as u64)
        .rtt_nanos((rtt_us * 1e3) as u64)
        .weights(weights.clone());
    if let Some(l) = opt(options, "lambda") {
        let v: f64 = l.parse().map_err(|_| ParseError("bad --lambda".into()))?;
        b = b.lambda(v);
    }
    if let Some(m) = opt(options, "margin") {
        let v: f64 = m.parse().map_err(|_| ParseError("bad --margin".into()))?;
        b = b.bound_margin(v);
    }
    let p = b.build().map_err(|e| ParseError(e.to_string()))?;
    println!(
        "port_threshold,{} bytes ({:.1} pkts)",
        p.port_threshold_bytes(),
        p.port_threshold_bytes() as f64 / 1500.0
    );
    for q in 0..weights.len() {
        println!(
            "queue_{q}_filter_threshold,{} bytes (bound margin {:.2}x)",
            p.queue_threshold_bytes(q),
            p.bound_margin(q)
        );
    }
    println!("pmsbe_rtt_threshold,{} ns", p.rtt_threshold_nanos());
    Ok(())
}
