//! Argument parsing for the `pmsb-sim` command-line driver.
//!
//! Hand-rolled (no CLI dependency): each sub-grammar is a small pure
//! parser with unit tests. See `src/bin/pmsb-sim.rs` for the binary and
//! `pmsb-sim help` for the surface syntax.

use pmsb_netsim::experiment::{FlowDesc, MarkingConfig, SchedulerConfig, TransportKind};
use pmsb_netsim::{BufferPolicy, EngineKind, PartitionStrategy, RegionSpec};
use pmsb_workload::{PatternSpec, SizeDistSpec};

/// A parse failure with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parses a byte size with optional `K`/`M`/`G` suffix (decimal powers),
/// or `u`/`unbounded` for a long-lived flow.
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_size_bytes;
///
/// assert_eq!(parse_size_bytes("64K").unwrap(), 64_000);
/// assert_eq!(parse_size_bytes("1.5M").unwrap(), 1_500_000);
/// assert_eq!(parse_size_bytes("u").unwrap(), u64::MAX);
/// ```
pub fn parse_size_bytes(s: &str) -> Result<u64, ParseError> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("u") || s.eq_ignore_ascii_case("unbounded") {
        return Ok(u64::MAX);
    }
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1_000f64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1_000_000f64),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1_000_000_000f64),
        _ => (s, 1f64),
    };
    match num.parse::<f64>() {
        Ok(v) if v > 0.0 && v.is_finite() => Ok((v * mult).round() as u64),
        _ => err(format!("bad size '{s}' (examples: 64K, 1.5M, 2G, u)")),
    }
}

/// Parses a comma-separated weight list, e.g. `1,1,2`.
pub fn parse_weights(s: &str) -> Result<Vec<u64>, ParseError> {
    let weights: Result<Vec<u64>, _> = s.split(',').map(|w| w.trim().parse::<u64>()).collect();
    match weights {
        Ok(w) if !w.is_empty() && w.iter().all(|x| *x > 0) => Ok(w),
        _ => err(format!("bad weights '{s}' (example: 1,1,2)")),
    }
}

/// Parses a marking-scheme spec:
///
/// | Spec | Scheme |
/// |---|---|
/// | `none` | ECN off |
/// | `pmsb:K` | PMSB, port threshold K packets |
/// | `per-port:K` | per-port threshold K packets |
/// | `per-queue:K` | per-queue standard threshold K packets |
/// | `per-queue-frac:K` | per-queue fractional, total K packets |
/// | `pool:K` | per-service-pool threshold K packets |
/// | `mq-ecn:K` | MQ-ECN, standard threshold K packets |
/// | `tcn:NANOS` | TCN, sojourn threshold in nanoseconds |
/// | `red:MIN,MAX,P` | RED ramp, packet thresholds + max probability |
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_marking;
/// use pmsb_netsim::experiment::MarkingConfig;
///
/// assert_eq!(
///     parse_marking("pmsb:12").unwrap(),
///     MarkingConfig::Pmsb { port_threshold_pkts: 12 }
/// );
/// ```
pub fn parse_marking(s: &str) -> Result<MarkingConfig, ParseError> {
    let (kind, arg) = match s.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (s, None),
    };
    let int_arg = |what: &str| -> Result<u64, ParseError> {
        match arg.map(|a| a.parse::<u64>()) {
            Some(Ok(v)) if v > 0 => Ok(v),
            _ => err(format!("scheme '{kind}' needs {what}, e.g. {kind}:12")),
        }
    };
    match kind {
        "none" => Ok(MarkingConfig::None),
        "pmsb" => Ok(MarkingConfig::Pmsb {
            port_threshold_pkts: int_arg("a packet threshold")?,
        }),
        "per-port" => Ok(MarkingConfig::PerPort {
            threshold_pkts: int_arg("a packet threshold")?,
        }),
        "per-queue" => Ok(MarkingConfig::PerQueueStandard {
            threshold_pkts: int_arg("a packet threshold")?,
        }),
        "per-queue-frac" => Ok(MarkingConfig::PerQueueFractional {
            total_pkts: int_arg("a packet threshold")?,
        }),
        "pool" => Ok(MarkingConfig::PerPool {
            threshold_pkts: int_arg("a packet threshold")?,
        }),
        "mq-ecn" => Ok(MarkingConfig::MqEcn {
            standard_pkts: int_arg("a packet threshold")?,
        }),
        "tcn" => Ok(MarkingConfig::Tcn {
            threshold_nanos: int_arg("a sojourn threshold in ns")?,
        }),
        "red" => {
            let parts: Vec<&str> = arg.unwrap_or("").split(',').collect();
            if parts.len() != 3 {
                return err("red needs MIN,MAX,P — e.g. red:4,28,0.25");
            }
            let min = parts[0].parse::<u64>();
            let max = parts[1].parse::<u64>();
            let p = parts[2].parse::<f64>();
            match (min, max, p) {
                (Ok(min), Ok(max), Ok(p)) if min < max && p > 0.0 && p <= 1.0 => {
                    Ok(MarkingConfig::Red {
                        min_pkts: min,
                        max_pkts: max,
                        max_p: p,
                    })
                }
                _ => err("red needs MIN<MAX packets and 0<P<=1"),
            }
        }
        other => err(format!(
            "unknown marking scheme '{other}' \
             (none|pmsb|per-port|per-queue|per-queue-frac|pool|mq-ecn|tcn|red)"
        )),
    }
}

/// Parses a scheduler spec: `fifo`, `sp:N`, `dwrr:w1,w2,...`,
/// `wrr:w1,...`, `wfq:w1,...`, or `spwfq:g1,g2,..;w1,w2,..`.
pub fn parse_scheduler(s: &str) -> Result<SchedulerConfig, ParseError> {
    let (kind, arg) = match s.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (s, None),
    };
    match kind {
        "fifo" => Ok(SchedulerConfig::Fifo),
        "sp" => match arg.map(|a| a.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => Ok(SchedulerConfig::Sp { num_queues: n }),
            _ => err("sp needs a queue count, e.g. sp:3"),
        },
        "dwrr" => Ok(SchedulerConfig::Dwrr {
            weights: parse_weights(arg.unwrap_or(""))?,
        }),
        "wrr" => Ok(SchedulerConfig::Wrr {
            weights: parse_weights(arg.unwrap_or(""))?,
        }),
        "wfq" => Ok(SchedulerConfig::Wfq {
            weights: parse_weights(arg.unwrap_or(""))?,
        }),
        "spwfq" => {
            let Some((groups, weights)) = arg.unwrap_or("").split_once(';') else {
                return err("spwfq needs GROUPS;WEIGHTS — e.g. spwfq:0,1,1;1,1,1");
            };
            let group_of: Result<Vec<usize>, _> = groups
                .split(',')
                .map(|g| g.trim().parse::<usize>())
                .collect();
            match group_of {
                Ok(g) if !g.is_empty() => Ok(SchedulerConfig::SpWfq {
                    group_of: g,
                    weights: parse_weights(weights)?,
                }),
                _ => err("bad spwfq groups"),
            }
        }
        other => err(format!(
            "unknown scheduler '{other}' (fifo|sp|wrr|dwrr|wfq|spwfq)"
        )),
    }
}

/// A topology selection for the `fabric` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// The paper's 48-host leaf–spine.
    LeafSpine,
    /// A `k`-ary fat-tree: `k³/4` hosts, `(5/4)k²` switches.
    FatTree {
        /// The fat-tree parameter (even, at least 4).
        k: usize,
    },
}

/// Parses a topology spec: `leaf-spine` or `fat-tree:K` (K even, >= 4).
/// Unknown names and bad `K` values get errors that list what is
/// accepted.
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::{parse_topology, TopologySpec};
///
/// assert_eq!(parse_topology("fat-tree:8").unwrap(), TopologySpec::FatTree { k: 8 });
/// assert_eq!(parse_topology("leaf-spine").unwrap(), TopologySpec::LeafSpine);
/// ```
pub fn parse_topology(s: &str) -> Result<TopologySpec, ParseError> {
    let (kind, arg) = match s.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (s, None),
    };
    match kind {
        "leaf-spine" => match arg {
            None => Ok(TopologySpec::LeafSpine),
            Some(a) => err(format!("leaf-spine takes no parameter, got ':{a}'")),
        },
        "fat-tree" => {
            let Some(a) = arg else {
                return err("fat-tree needs a size, e.g. fat-tree:8");
            };
            match a.trim().parse::<usize>() {
                Ok(k) if k >= 4 && k.is_multiple_of(2) => Ok(TopologySpec::FatTree { k }),
                Ok(k) => err(format!(
                    "fat-tree k must be even and >= 4, got {k} \
                     (a k-ary fat-tree pairs k/2 uplinks with k/2 downlinks per switch)"
                )),
                Err(_) => err(format!("fat-tree needs an integer k, got '{a}'")),
            }
        }
        other => err(format!(
            "unknown topology '{other}' (leaf-spine|fat-tree:K)"
        )),
    }
}

/// Parses a traffic-pattern spec for the `fabric` subcommand:
///
/// | Spec | Pattern |
/// |---|---|
/// | `incast[:FAN]` | synchronized N-to-1, fan-in FAN (default 32) |
/// | `shuffle` | all-to-all waves, 100 KB flows |
/// | `hotservice[:EXP]` | Zipf(EXP) hot service (default 1.2) |
/// | `mix` | start-time merge of incast(32) and shuffle |
///
/// Any pattern may carry an `@DIST` suffix that replaces its fixed flow
/// sizes with draws from a measured CDF: `@web-search`, `@data-mining`,
/// or `@paper-mix` — e.g. `shuffle@web-search`, `incast:16@paper-mix`.
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_pattern;
/// use pmsb_workload::{PatternSpec, SizeDistSpec};
///
/// assert_eq!(parse_pattern("incast:16").unwrap(), PatternSpec::incast(16));
/// assert_eq!(
///     parse_pattern("shuffle@web-search").unwrap(),
///     PatternSpec::sized(PatternSpec::shuffle(), SizeDistSpec::WebSearch)
/// );
/// ```
pub fn parse_pattern(s: &str) -> Result<PatternSpec, ParseError> {
    // `@DIST` binds loosest: `incast:16@paper-mix` sizes incast(16).
    if let Some((base, dist)) = s.rsplit_once('@') {
        let dist = match dist {
            "web-search" => SizeDistSpec::WebSearch,
            "data-mining" => SizeDistSpec::DataMining,
            "paper-mix" => SizeDistSpec::PaperMix,
            other => {
                return err(format!(
                    "unknown size distribution '@{other}' \
                     (@web-search|@data-mining|@paper-mix)"
                ))
            }
        };
        return Ok(PatternSpec::sized(parse_pattern(base)?, dist));
    }
    let (kind, arg) = match s.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (s, None),
    };
    let no_arg = |p: PatternSpec| match arg {
        None => Ok(p),
        Some(a) => err(format!("pattern '{kind}' takes no parameter, got ':{a}'")),
    };
    match kind {
        "incast" => match arg {
            None => Ok(PatternSpec::incast(32)),
            Some(a) => match a.trim().parse::<usize>() {
                Ok(f) if f >= 1 => Ok(PatternSpec::incast(f)),
                _ => err(format!("incast needs a fan-in >= 1, got '{a}'")),
            },
        },
        "shuffle" => no_arg(PatternSpec::shuffle()),
        "hotservice" => match arg {
            None => Ok(PatternSpec::hotservice(1.2)),
            Some(a) => match a.trim().parse::<f64>() {
                Ok(e) if e >= 0.0 && e.is_finite() => Ok(PatternSpec::hotservice(e)),
                _ => err(format!("hotservice needs an exponent >= 0, got '{a}'")),
            },
        },
        "mix" => no_arg(PatternSpec::Mix(vec![
            PatternSpec::incast(32),
            PatternSpec::shuffle(),
        ])),
        other => err(format!(
            "unknown pattern '{other}' (incast[:FAN]|shuffle|hotservice[:EXP]|mix)"
        )),
    }
}

/// Parses a simulation-engine spec: `packet` (the default event-per-
/// packet engine), `fluid` (flow-level max-min rate solve with
/// steady-state marking curves), `hybrid` (fluid rates plus per-port
/// packet micro-simulations calibrating the marking behaviour), or
/// `regional[:auto|:ports=SWITCH:PORT[,...]]` (fluid everywhere except
/// a hot set of switch ports simulated at full packet level; the
/// default `auto` lets a deterministic scout pass flag the hot set).
///
/// The returned [`RegionSpec`] is meaningful only for the regional
/// engine; the other engines carry the default `auto` and ignore it.
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_engine;
/// use pmsb_netsim::{EngineKind, RegionSpec};
///
/// assert_eq!(parse_engine("hybrid").unwrap().0, EngineKind::Hybrid);
/// assert_eq!(
///     parse_engine("regional:ports=0:4").unwrap(),
///     (EngineKind::Regional, RegionSpec::Ports(vec![(0, 4)])),
/// );
/// ```
pub fn parse_engine(s: &str) -> Result<(EngineKind, RegionSpec), ParseError> {
    match s {
        "packet" => Ok((EngineKind::Packet, RegionSpec::Auto)),
        "fluid" => Ok((EngineKind::Fluid, RegionSpec::Auto)),
        "hybrid" => Ok((EngineKind::Hybrid, RegionSpec::Auto)),
        "regional" => Ok((EngineKind::Regional, RegionSpec::Auto)),
        other => match other.strip_prefix("regional:") {
            Some(spec) => Ok((EngineKind::Regional, RegionSpec::parse(spec).map_err(ParseError)?)),
            None => err(format!(
                "unknown engine '{other}' (packet|fluid|hybrid|regional[:auto|:ports=SWITCH:PORT[,...]])"
            )),
        },
    }
}

/// Parses a switch buffer-policy spec: `static` (private per-port
/// buffers, the default), `dt:ALPHA` (per-switch shared pool with
/// Dynamic-Threshold admission at the given positive scale factor), or
/// `delay[:MICROS]` (shared pool with BShare-style delay-driven caps,
/// target queueing delay in microseconds, default 100).
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_buffer;
/// use pmsb_netsim::BufferPolicy;
///
/// assert_eq!(parse_buffer("dt:1").unwrap(), BufferPolicy::DynamicThreshold { alpha: 1.0 });
/// ```
pub fn parse_buffer(s: &str) -> Result<BufferPolicy, ParseError> {
    BufferPolicy::parse(s).map_err(ParseError)
}

/// Parses a `--sim-threads` value: a positive integer, or `auto` to use
/// every hardware thread the OS reports (falling back to 1 when the
/// report is unavailable). The runner separately caps the count at the
/// topology's switch count.
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_sim_threads;
///
/// assert_eq!(parse_sim_threads("4").unwrap(), 4);
/// assert!(parse_sim_threads("auto").unwrap() >= 1);
/// assert!(parse_sim_threads("0").is_err());
/// ```
pub fn parse_sim_threads(s: &str) -> Result<usize, ParseError> {
    if s.eq_ignore_ascii_case("auto") {
        return Ok(std::thread::available_parallelism().map_or(1, |n| n.get()));
    }
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => err(format!(
            "bad sim-threads '{s}' (a positive integer, or auto)"
        )),
    }
}

/// Parses a `--partition` strategy name: `traffic` (workload-weighted
/// greedy balanced growth, the default) or `contiguous` (plain
/// switch-index ranges). Results are byte-identical either way; the
/// strategy only affects parallel run speed.
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_partition;
/// use pmsb_netsim::PartitionStrategy;
///
/// assert_eq!(parse_partition("traffic").unwrap(), PartitionStrategy::Traffic);
/// assert_eq!(parse_partition("contiguous").unwrap(), PartitionStrategy::Contiguous);
/// ```
pub fn parse_partition(s: &str) -> Result<PartitionStrategy, ParseError> {
    match s {
        "traffic" => Ok(PartitionStrategy::Traffic),
        "contiguous" => Ok(PartitionStrategy::Contiguous),
        other => err(format!(
            "unknown partition strategy '{other}' (traffic|contiguous)"
        )),
    }
}

/// Parses a transport name: `dctcp` (the default) or `newreno` (classic
/// RFC 3168 ECN: halve once per RTT on ECE, no DCTCP alpha estimator).
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_transport;
/// use pmsb_netsim::experiment::TransportKind;
///
/// assert_eq!(parse_transport("newreno").unwrap(), TransportKind::NewReno);
/// ```
pub fn parse_transport(s: &str) -> Result<TransportKind, ParseError> {
    match s {
        "dctcp" => Ok(TransportKind::Dctcp),
        "newreno" => Ok(TransportKind::NewReno),
        other => err(format!("unknown transport '{other}' (dctcp|newreno)")),
    }
}

/// Parses one flow spec `SRC>DST:SERVICE:SIZE[@START_US][/RATE_GBPS]`,
/// e.g. `0>8:1:64K`, `2>8:0:u/5` (unbounded at 5 Gbps),
/// `1>4:3:1M@2500` (1 MB starting at t = 2.5 ms).
///
/// # Example
///
/// ```
/// use pmsb_repro::cli::parse_flow;
///
/// let f = parse_flow("0>8:1:64K").unwrap();
/// assert_eq!((f.src_host, f.dst_host, f.service, f.size_bytes), (0, 8, 1, 64_000));
/// ```
pub fn parse_flow(s: &str) -> Result<FlowDesc, ParseError> {
    let Some((pair, rest)) = s.split_once(':') else {
        return err(format!("flow '{s}': expected SRC>DST:SERVICE:SIZE"));
    };
    let Some((src, dst)) = pair.split_once('>') else {
        return err(format!("flow '{s}': endpoint must be SRC>DST"));
    };
    let (src, dst) = match (src.trim().parse::<usize>(), dst.trim().parse::<usize>()) {
        (Ok(a), Ok(b)) if a != b => (a, b),
        _ => return err(format!("flow '{s}': bad or equal endpoints")),
    };
    let Some((service, size_part)) = rest.split_once(':') else {
        return err(format!("flow '{s}': missing SERVICE:SIZE"));
    };
    let Ok(service) = service.trim().parse::<usize>() else {
        return err(format!("flow '{s}': bad service"));
    };
    // SIZE[@START_US][/RATE_GBPS] — rate first split so '@' binds tighter.
    let (size_start, rate) = match size_part.split_once('/') {
        Some((lhs, r)) => match r.trim().parse::<f64>() {
            Ok(g) if g > 0.0 => (lhs, Some((g * 1e9) as u64)),
            _ => return err(format!("flow '{s}': bad rate")),
        },
        None => (size_part, None),
    };
    let (size, start_us) = match size_start.split_once('@') {
        Some((sz, st)) => match st.trim().parse::<u64>() {
            Ok(us) => (sz, us),
            Err(_) => return err(format!("flow '{s}': bad start time")),
        },
        None => (size_start, 0),
    };
    let mut f =
        FlowDesc::bulk(src, dst, service, parse_size_bytes(size)?).starting_at(start_us * 1_000);
    if let Some(r) = rate {
        f = f.with_app_rate_bps(r);
    }
    Ok(f)
}

/// Positional arguments plus `(key, value)` option pairs.
pub type SplitArgs = (Vec<String>, Vec<(String, String)>);

/// Splits `args` into positional arguments and `--key value` options
/// (flags repeatable; `--flow` collects into a list). A token starting
/// with `--` is never accepted as a value, so a forgotten value is
/// reported against the right option instead of silently swallowing
/// the next one.
pub fn split_options(args: &[String]) -> Result<SplitArgs, ParseError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            match it.peek() {
                Some(value) if !value.starts_with("--") => {
                    options.push((key.to_string(), it.next().unwrap().clone()));
                }
                Some(value) => {
                    return err(format!(
                        "option --{key} needs a value, but found option '{value}' \
                         next (write --{key} VALUE)"
                    ));
                }
                None => return err(format!("option --{key} needs a value")),
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, options))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_parse() {
        assert_eq!(parse_size_bytes("1500").unwrap(), 1500);
        assert_eq!(parse_size_bytes("64k").unwrap(), 64_000);
        assert_eq!(parse_size_bytes("10M").unwrap(), 10_000_000);
        assert_eq!(parse_size_bytes("2G").unwrap(), 2_000_000_000);
        assert_eq!(parse_size_bytes("U").unwrap(), u64::MAX);
        assert!(parse_size_bytes("-5").is_err());
        assert!(parse_size_bytes("abc").is_err());
    }

    #[test]
    fn markings_parse() {
        assert_eq!(parse_marking("none").unwrap(), MarkingConfig::None);
        assert_eq!(
            parse_marking("tcn:78200").unwrap(),
            MarkingConfig::Tcn {
                threshold_nanos: 78_200
            }
        );
        assert_eq!(
            parse_marking("red:4,28,0.25").unwrap(),
            MarkingConfig::Red {
                min_pkts: 4,
                max_pkts: 28,
                max_p: 0.25
            }
        );
        assert!(parse_marking("pmsb").is_err());
        assert!(parse_marking("red:28,4,0.25").is_err());
        assert!(parse_marking("wat:1").is_err());
    }

    #[test]
    fn schedulers_parse() {
        assert_eq!(parse_scheduler("fifo").unwrap(), SchedulerConfig::Fifo);
        assert_eq!(
            parse_scheduler("dwrr:1,1,2").unwrap(),
            SchedulerConfig::Dwrr {
                weights: vec![1, 1, 2]
            }
        );
        assert_eq!(
            parse_scheduler("spwfq:0,1,1;1,1,1").unwrap(),
            SchedulerConfig::SpWfq {
                group_of: vec![0, 1, 1],
                weights: vec![1, 1, 1]
            }
        );
        assert!(parse_scheduler("sp").is_err());
        assert!(parse_scheduler("dwrr:0,1").is_err());
    }

    #[test]
    fn transports_parse() {
        assert_eq!(parse_transport("dctcp").unwrap(), TransportKind::Dctcp);
        assert_eq!(parse_transport("newreno").unwrap(), TransportKind::NewReno);
    }

    #[test]
    fn unknown_transport_lists_the_accepted_names() {
        let e = parse_transport("cubic").unwrap_err();
        assert!(e.0.contains("cubic"), "names the bad input: {e}");
        assert!(e.0.contains("dctcp|newreno"), "lists the variants: {e}");
    }

    #[test]
    fn unknown_marking_and_scheduler_list_the_accepted_names() {
        let e = parse_marking("wat:1").unwrap_err();
        assert!(
            e.0.contains("none|pmsb|per-port|per-queue|per-queue-frac|pool|mq-ecn|tcn|red"),
            "marking error lists variants: {e}"
        );
        let e = parse_scheduler("wat").unwrap_err();
        assert!(
            e.0.contains("fifo|sp|wrr|dwrr|wfq|spwfq"),
            "scheduler error lists variants: {e}"
        );
    }

    #[test]
    fn topologies_parse() {
        assert_eq!(
            parse_topology("leaf-spine").unwrap(),
            TopologySpec::LeafSpine
        );
        assert_eq!(
            parse_topology("fat-tree:16").unwrap(),
            TopologySpec::FatTree { k: 16 }
        );
        let e = parse_topology("fat-tree:5").unwrap_err();
        assert!(
            e.0.contains("even") && e.0.contains('5'),
            "odd k gets a clear error: {e}"
        );
        let e = parse_topology("fat-tree:2").unwrap_err();
        assert!(e.0.contains("even and >= 4"), "tiny k rejected: {e}");
        let e = parse_topology("fat-tree:x").unwrap_err();
        assert!(e.0.contains("integer"), "non-numeric k rejected: {e}");
        assert!(parse_topology("fat-tree").is_err(), "missing k rejected");
        assert!(parse_topology("leaf-spine:4").is_err(), "stray parameter");
    }

    #[test]
    fn unknown_topology_and_pattern_list_the_accepted_names() {
        let e = parse_topology("torus").unwrap_err();
        assert!(e.0.contains("torus"), "names the bad input: {e}");
        assert!(
            e.0.contains("leaf-spine|fat-tree:K"),
            "lists the variants: {e}"
        );
        let e = parse_pattern("websearch").unwrap_err();
        assert!(e.0.contains("websearch"), "names the bad input: {e}");
        assert!(
            e.0.contains("incast[:FAN]|shuffle|hotservice[:EXP]|mix"),
            "lists the variants: {e}"
        );
    }

    #[test]
    fn patterns_parse() {
        assert_eq!(parse_pattern("incast").unwrap(), PatternSpec::incast(32));
        assert_eq!(parse_pattern("incast:8").unwrap(), PatternSpec::incast(8));
        assert_eq!(parse_pattern("shuffle").unwrap(), PatternSpec::shuffle());
        assert_eq!(
            parse_pattern("hotservice:1.1").unwrap(),
            PatternSpec::hotservice(1.1)
        );
        assert_eq!(
            parse_pattern("mix").unwrap(),
            PatternSpec::Mix(vec![PatternSpec::incast(32), PatternSpec::shuffle()])
        );
        assert!(parse_pattern("incast:0").is_err(), "zero fan-in rejected");
        assert!(parse_pattern("hotservice:-1").is_err(), "negative exponent");
        assert!(parse_pattern("shuffle:3").is_err(), "stray parameter");
    }

    #[test]
    fn size_dist_suffix_parses() {
        assert_eq!(
            parse_pattern("shuffle@web-search").unwrap(),
            PatternSpec::sized(PatternSpec::shuffle(), SizeDistSpec::WebSearch)
        );
        assert_eq!(
            parse_pattern("incast:16@paper-mix").unwrap(),
            PatternSpec::sized(PatternSpec::incast(16), SizeDistSpec::PaperMix)
        );
        assert_eq!(
            parse_pattern("mix@data-mining").unwrap(),
            PatternSpec::sized(
                PatternSpec::Mix(vec![PatternSpec::incast(32), PatternSpec::shuffle()]),
                SizeDistSpec::DataMining
            )
        );
        let e = parse_pattern("shuffle@pareto").unwrap_err();
        assert!(e.0.contains("pareto"), "names the bad input: {e}");
        assert!(
            e.0.contains("@web-search|@data-mining|@paper-mix"),
            "lists the variants: {e}"
        );
    }

    #[test]
    fn engines_parse() {
        assert_eq!(
            parse_engine("packet").unwrap(),
            (EngineKind::Packet, RegionSpec::Auto)
        );
        assert_eq!(
            parse_engine("fluid").unwrap(),
            (EngineKind::Fluid, RegionSpec::Auto)
        );
        assert_eq!(
            parse_engine("hybrid").unwrap(),
            (EngineKind::Hybrid, RegionSpec::Auto)
        );
        assert_eq!(
            parse_engine("regional").unwrap(),
            (EngineKind::Regional, RegionSpec::Auto)
        );
        assert_eq!(
            parse_engine("regional:auto").unwrap(),
            (EngineKind::Regional, RegionSpec::Auto)
        );
        assert_eq!(
            parse_engine("regional:ports=0:4,1:2").unwrap(),
            (
                EngineKind::Regional,
                RegionSpec::Ports(vec![(0, 4), (1, 2)])
            )
        );
        let e = parse_engine("quantum").unwrap_err();
        assert!(e.0.contains("quantum"), "names the bad input: {e}");
        assert!(
            e.0.contains("packet|fluid|hybrid|regional"),
            "lists the variants: {e}"
        );
        let e = parse_engine("regional:ports=x").unwrap_err();
        assert!(
            e.0.contains("SWITCH:PORT"),
            "region spec errors list the accepted form: {e}"
        );
    }

    #[test]
    fn buffers_parse() {
        assert_eq!(parse_buffer("static").unwrap(), BufferPolicy::Static);
        assert_eq!(
            parse_buffer("dt:0.5").unwrap(),
            BufferPolicy::DynamicThreshold { alpha: 0.5 }
        );
        assert_eq!(
            parse_buffer("delay").unwrap(),
            BufferPolicy::DelayDriven {
                target_delay_nanos: 100_000
            }
        );
        assert_eq!(
            parse_buffer("delay:250").unwrap(),
            BufferPolicy::DelayDriven {
                target_delay_nanos: 250_000
            }
        );
        assert!(parse_buffer("dt:0").is_err(), "alpha must be positive");
        assert!(parse_buffer("delay:0").is_err(), "zero target rejected");
    }

    #[test]
    fn unknown_buffer_policy_lists_the_accepted_names() {
        let e = parse_buffer("shared").unwrap_err();
        assert!(e.0.contains("shared"), "names the bad input: {e}");
        assert!(
            e.0.contains("static|dt:ALPHA|delay[:MICROS]"),
            "lists the variants: {e}"
        );
    }

    #[test]
    fn sim_threads_parse() {
        assert_eq!(parse_sim_threads("1").unwrap(), 1);
        assert_eq!(parse_sim_threads("16").unwrap(), 16);
        assert!(parse_sim_threads("auto").unwrap() >= 1);
        assert!(parse_sim_threads("AUTO").unwrap() >= 1);
        let e = parse_sim_threads("0").unwrap_err();
        assert!(
            e.0.contains("positive integer, or auto"),
            "lists accepted: {e}"
        );
        assert!(parse_sim_threads("-2").is_err());
        assert!(parse_sim_threads("many").is_err());
    }

    #[test]
    fn partitions_parse() {
        assert_eq!(
            parse_partition("traffic").unwrap(),
            PartitionStrategy::Traffic
        );
        assert_eq!(
            parse_partition("contiguous").unwrap(),
            PartitionStrategy::Contiguous
        );
        let e = parse_partition("metis").unwrap_err();
        assert!(e.0.contains("metis"), "names the bad input: {e}");
        assert!(
            e.0.contains("traffic|contiguous"),
            "lists the variants: {e}"
        );
    }

    #[test]
    fn flows_parse() {
        let f = parse_flow("2>8:0:u/5").unwrap();
        assert_eq!(f.size_bytes, u64::MAX);
        assert_eq!(f.app_rate_bps, Some(5_000_000_000));
        let f = parse_flow("1>4:3:1M@2500").unwrap();
        assert_eq!(f.start_nanos, 2_500_000);
        assert_eq!(f.size_bytes, 1_000_000);
        assert!(parse_flow("1>1:0:1M").is_err(), "self flow");
        assert!(parse_flow("nope").is_err());
    }

    #[test]
    fn options_split() {
        let args: Vec<String> = ["dumbbell", "--senders", "4", "--flow", "0>4:0:1M"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, opts) = split_options(&args).unwrap();
        assert_eq!(pos, vec!["dumbbell"]);
        assert_eq!(opts.len(), 2);
        assert!(split_options(std::slice::from_ref(&"--senders".to_string())).is_err());
    }

    #[test]
    fn option_like_values_are_rejected() {
        // `--senders` missing its value must not swallow `--queues`.
        let args: Vec<String> = ["dumbbell", "--senders", "--queues", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = split_options(&args).unwrap_err();
        assert!(
            e.0.contains("--senders") && e.0.contains("--queues"),
            "error should name both the option and the stray token: {e}"
        );
        // A negative number is a legitimate value, not an option.
        let args: Vec<String> = ["--offset", "-5"].iter().map(|s| s.to_string()).collect();
        let (_, opts) = split_options(&args).unwrap();
        assert_eq!(opts, vec![("offset".to_string(), "-5".to_string())]);
    }
}
