#![warn(missing_docs)]

//! Umbrella crate for the PMSB reproduction workspace.
//!
//! This crate re-exports the member crates so the root-level `examples/` and
//! `tests/` can exercise the whole public API surface from one place:
//!
//! * [`pmsb`] — the paper's contribution: ECN marking schemes (including
//!   PMSB, Algorithm 1), the PMSB(e) end-host rule (Algorithm 2), and the
//!   steady-state analysis of Theorem IV.1.
//! * [`sched`](pmsb_sched) — multi-queue packet schedulers (SP, WRR, DWRR,
//!   WFQ, SP+WFQ).
//! * [`netsim`](pmsb_netsim) — the packet-level discrete-event network
//!   simulator (links, hosts, multi-queue switches, DCTCP) used for all
//!   experiments.
//! * [`workload`](pmsb_workload) — flow-size distributions and Poisson
//!   arrival processes.
//! * [`metrics`](pmsb_metrics) — FCT statistics, percentiles, time series.
//! * [`simcore`](pmsb_simcore) — simulation time and the event queue.
//!
//! # Example
//!
//! ```
//! use pmsb::marking::{Pmsb, MarkingScheme};
//! use pmsb::PortSnapshot;
//!
//! // Port threshold of 12 packets (MTU = 1500 B), two equal-weight queues.
//! let mut scheme = Pmsb::new(12 * 1500, vec![1, 1]);
//! let view = PortSnapshot::builder(2)
//!     .queue_bytes(0, 20 * 1500)
//!     .queue_bytes(1, 1 * 1500)
//!     .build();
//! // Queue 0 is over its filter threshold and the port is congested: mark.
//! assert!(scheme.should_mark(&view, 0).is_mark());
//! // Queue 1 is a victim of the other queue's backlog: selectively blind.
//! assert!(!scheme.should_mark(&view, 1).is_mark());
//! ```

pub mod cli;

pub use pmsb;
pub use pmsb_metrics;
pub use pmsb_netsim;
pub use pmsb_sched;
pub use pmsb_simcore;
pub use pmsb_workload;
