/root/repo/target/debug/deps/ablation_classic_ecn-a798ffc7bf43bb2d.d: crates/bench/src/bin/ablation_classic_ecn.rs

/root/repo/target/debug/deps/ablation_classic_ecn-a798ffc7bf43bb2d: crates/bench/src/bin/ablation_classic_ecn.rs

crates/bench/src/bin/ablation_classic_ecn.rs:
