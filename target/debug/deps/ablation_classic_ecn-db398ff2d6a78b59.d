/root/repo/target/debug/deps/ablation_classic_ecn-db398ff2d6a78b59.d: crates/bench/src/bin/ablation_classic_ecn.rs Cargo.toml

/root/repo/target/debug/deps/libablation_classic_ecn-db398ff2d6a78b59.rmeta: crates/bench/src/bin/ablation_classic_ecn.rs Cargo.toml

crates/bench/src/bin/ablation_classic_ecn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
