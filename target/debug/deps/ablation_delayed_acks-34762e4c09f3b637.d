/root/repo/target/debug/deps/ablation_delayed_acks-34762e4c09f3b637.d: crates/bench/src/bin/ablation_delayed_acks.rs

/root/repo/target/debug/deps/ablation_delayed_acks-34762e4c09f3b637: crates/bench/src/bin/ablation_delayed_acks.rs

crates/bench/src/bin/ablation_delayed_acks.rs:
