/root/repo/target/debug/deps/ablation_delayed_acks-af2c55ab96fb6cee.d: crates/bench/src/bin/ablation_delayed_acks.rs Cargo.toml

/root/repo/target/debug/deps/libablation_delayed_acks-af2c55ab96fb6cee.rmeta: crates/bench/src/bin/ablation_delayed_acks.rs Cargo.toml

crates/bench/src/bin/ablation_delayed_acks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
