/root/repo/target/debug/deps/ablation_pmsbe_threshold-65e834211674a8e4.d: crates/bench/src/bin/ablation_pmsbe_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pmsbe_threshold-65e834211674a8e4.rmeta: crates/bench/src/bin/ablation_pmsbe_threshold.rs Cargo.toml

crates/bench/src/bin/ablation_pmsbe_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
