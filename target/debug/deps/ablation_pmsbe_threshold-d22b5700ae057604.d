/root/repo/target/debug/deps/ablation_pmsbe_threshold-d22b5700ae057604.d: crates/bench/src/bin/ablation_pmsbe_threshold.rs

/root/repo/target/debug/deps/ablation_pmsbe_threshold-d22b5700ae057604: crates/bench/src/bin/ablation_pmsbe_threshold.rs

crates/bench/src/bin/ablation_pmsbe_threshold.rs:
