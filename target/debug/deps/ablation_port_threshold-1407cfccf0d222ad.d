/root/repo/target/debug/deps/ablation_port_threshold-1407cfccf0d222ad.d: crates/bench/src/bin/ablation_port_threshold.rs

/root/repo/target/debug/deps/ablation_port_threshold-1407cfccf0d222ad: crates/bench/src/bin/ablation_port_threshold.rs

crates/bench/src/bin/ablation_port_threshold.rs:
