/root/repo/target/debug/deps/ablation_port_threshold-2eda43c695d7c62b.d: crates/bench/src/bin/ablation_port_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libablation_port_threshold-2eda43c695d7c62b.rmeta: crates/bench/src/bin/ablation_port_threshold.rs Cargo.toml

crates/bench/src/bin/ablation_port_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
