/root/repo/target/debug/deps/ablation_red_vs_step-57f51b35bc81dfa2.d: crates/bench/src/bin/ablation_red_vs_step.rs Cargo.toml

/root/repo/target/debug/deps/libablation_red_vs_step-57f51b35bc81dfa2.rmeta: crates/bench/src/bin/ablation_red_vs_step.rs Cargo.toml

crates/bench/src/bin/ablation_red_vs_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
