/root/repo/target/debug/deps/ablation_red_vs_step-98da1bf8851f991b.d: crates/bench/src/bin/ablation_red_vs_step.rs

/root/repo/target/debug/deps/ablation_red_vs_step-98da1bf8851f991b: crates/bench/src/bin/ablation_red_vs_step.rs

crates/bench/src/bin/ablation_red_vs_step.rs:
