/root/repo/target/debug/deps/ablation_red_vs_step-d13b3780ed29779c.d: crates/bench/src/bin/ablation_red_vs_step.rs Cargo.toml

/root/repo/target/debug/deps/libablation_red_vs_step-d13b3780ed29779c.rmeta: crates/bench/src/bin/ablation_red_vs_step.rs Cargo.toml

crates/bench/src/bin/ablation_red_vs_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
