/root/repo/target/debug/deps/all_experiments-813bdabf5451ba09.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-813bdabf5451ba09: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
