/root/repo/target/debug/deps/all_experiments-9f58bf98b67c18be.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-9f58bf98b67c18be.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
