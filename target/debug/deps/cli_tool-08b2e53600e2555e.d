/root/repo/target/debug/deps/cli_tool-08b2e53600e2555e.d: tests/cli_tool.rs

/root/repo/target/debug/deps/cli_tool-08b2e53600e2555e: tests/cli_tool.rs

tests/cli_tool.rs:

# env-dep:CARGO_BIN_EXE_pmsb-sim=/root/repo/target/debug/pmsb-sim
