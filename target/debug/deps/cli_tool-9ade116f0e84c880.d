/root/repo/target/debug/deps/cli_tool-9ade116f0e84c880.d: tests/cli_tool.rs Cargo.toml

/root/repo/target/debug/deps/libcli_tool-9ade116f0e84c880.rmeta: tests/cli_tool.rs Cargo.toml

tests/cli_tool.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pmsb-sim=placeholder:pmsb-sim
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
