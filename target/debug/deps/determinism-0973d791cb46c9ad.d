/root/repo/target/debug/deps/determinism-0973d791cb46c9ad.d: crates/harness/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-0973d791cb46c9ad.rmeta: crates/harness/tests/determinism.rs Cargo.toml

crates/harness/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
