/root/repo/target/debug/deps/determinism-945f3f57d1f78289.d: crates/harness/tests/determinism.rs

/root/repo/target/debug/deps/determinism-945f3f57d1f78289: crates/harness/tests/determinism.rs

crates/harness/tests/determinism.rs:
