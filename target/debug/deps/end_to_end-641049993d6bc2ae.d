/root/repo/target/debug/deps/end_to_end-641049993d6bc2ae.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-641049993d6bc2ae: tests/end_to_end.rs

tests/end_to_end.rs:
