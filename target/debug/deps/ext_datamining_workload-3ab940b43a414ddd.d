/root/repo/target/debug/deps/ext_datamining_workload-3ab940b43a414ddd.d: crates/bench/src/bin/ext_datamining_workload.rs Cargo.toml

/root/repo/target/debug/deps/libext_datamining_workload-3ab940b43a414ddd.rmeta: crates/bench/src/bin/ext_datamining_workload.rs Cargo.toml

crates/bench/src/bin/ext_datamining_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
