/root/repo/target/debug/deps/ext_datamining_workload-94926dd332ef4c8b.d: crates/bench/src/bin/ext_datamining_workload.rs Cargo.toml

/root/repo/target/debug/deps/libext_datamining_workload-94926dd332ef4c8b.rmeta: crates/bench/src/bin/ext_datamining_workload.rs Cargo.toml

crates/bench/src/bin/ext_datamining_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
