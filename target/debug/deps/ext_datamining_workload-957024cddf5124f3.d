/root/repo/target/debug/deps/ext_datamining_workload-957024cddf5124f3.d: crates/bench/src/bin/ext_datamining_workload.rs

/root/repo/target/debug/deps/ext_datamining_workload-957024cddf5124f3: crates/bench/src/bin/ext_datamining_workload.rs

crates/bench/src/bin/ext_datamining_workload.rs:
