/root/repo/target/debug/deps/ext_dynamic_threshold-9f344a14b8dc0dac.d: crates/bench/src/bin/ext_dynamic_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libext_dynamic_threshold-9f344a14b8dc0dac.rmeta: crates/bench/src/bin/ext_dynamic_threshold.rs Cargo.toml

crates/bench/src/bin/ext_dynamic_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
