/root/repo/target/debug/deps/ext_dynamic_threshold-b8f2e0060f6d7e8b.d: crates/bench/src/bin/ext_dynamic_threshold.rs

/root/repo/target/debug/deps/ext_dynamic_threshold-b8f2e0060f6d7e8b: crates/bench/src/bin/ext_dynamic_threshold.rs

crates/bench/src/bin/ext_dynamic_threshold.rs:
