/root/repo/target/debug/deps/ext_incast-46099baf267e641f.d: crates/bench/src/bin/ext_incast.rs Cargo.toml

/root/repo/target/debug/deps/libext_incast-46099baf267e641f.rmeta: crates/bench/src/bin/ext_incast.rs Cargo.toml

crates/bench/src/bin/ext_incast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
