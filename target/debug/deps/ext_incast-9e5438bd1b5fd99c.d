/root/repo/target/debug/deps/ext_incast-9e5438bd1b5fd99c.d: crates/bench/src/bin/ext_incast.rs Cargo.toml

/root/repo/target/debug/deps/libext_incast-9e5438bd1b5fd99c.rmeta: crates/bench/src/bin/ext_incast.rs Cargo.toml

crates/bench/src/bin/ext_incast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
