/root/repo/target/debug/deps/ext_incast-e5fbde25ac81a6ab.d: crates/bench/src/bin/ext_incast.rs

/root/repo/target/debug/deps/ext_incast-e5fbde25ac81a6ab: crates/bench/src/bin/ext_incast.rs

crates/bench/src/bin/ext_incast.rs:
