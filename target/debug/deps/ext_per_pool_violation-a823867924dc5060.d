/root/repo/target/debug/deps/ext_per_pool_violation-a823867924dc5060.d: crates/bench/src/bin/ext_per_pool_violation.rs

/root/repo/target/debug/deps/ext_per_pool_violation-a823867924dc5060: crates/bench/src/bin/ext_per_pool_violation.rs

crates/bench/src/bin/ext_per_pool_violation.rs:
