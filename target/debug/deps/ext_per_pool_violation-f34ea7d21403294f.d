/root/repo/target/debug/deps/ext_per_pool_violation-f34ea7d21403294f.d: crates/bench/src/bin/ext_per_pool_violation.rs Cargo.toml

/root/repo/target/debug/deps/libext_per_pool_violation-f34ea7d21403294f.rmeta: crates/bench/src/bin/ext_per_pool_violation.rs Cargo.toml

crates/bench/src/bin/ext_per_pool_violation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
