/root/repo/target/debug/deps/ext_seed_sensitivity-1f98402d97dd138a.d: crates/bench/src/bin/ext_seed_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libext_seed_sensitivity-1f98402d97dd138a.rmeta: crates/bench/src/bin/ext_seed_sensitivity.rs Cargo.toml

crates/bench/src/bin/ext_seed_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
