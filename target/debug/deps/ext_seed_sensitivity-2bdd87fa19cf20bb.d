/root/repo/target/debug/deps/ext_seed_sensitivity-2bdd87fa19cf20bb.d: crates/bench/src/bin/ext_seed_sensitivity.rs

/root/repo/target/debug/deps/ext_seed_sensitivity-2bdd87fa19cf20bb: crates/bench/src/bin/ext_seed_sensitivity.rs

crates/bench/src/bin/ext_seed_sensitivity.rs:
