/root/repo/target/debug/deps/ext_websearch_workload-3d90503ffef2926e.d: crates/bench/src/bin/ext_websearch_workload.rs

/root/repo/target/debug/deps/ext_websearch_workload-3d90503ffef2926e: crates/bench/src/bin/ext_websearch_workload.rs

crates/bench/src/bin/ext_websearch_workload.rs:
