/root/repo/target/debug/deps/ext_websearch_workload-e80dc41e8b6a8c42.d: crates/bench/src/bin/ext_websearch_workload.rs Cargo.toml

/root/repo/target/debug/deps/libext_websearch_workload-e80dc41e8b6a8c42.rmeta: crates/bench/src/bin/ext_websearch_workload.rs Cargo.toml

crates/bench/src/bin/ext_websearch_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
