/root/repo/target/debug/deps/ext_websearch_workload-f6efb9b8e131a9f0.d: crates/bench/src/bin/ext_websearch_workload.rs Cargo.toml

/root/repo/target/debug/deps/libext_websearch_workload-f6efb9b8e131a9f0.rmeta: crates/bench/src/bin/ext_websearch_workload.rs Cargo.toml

crates/bench/src/bin/ext_websearch_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
