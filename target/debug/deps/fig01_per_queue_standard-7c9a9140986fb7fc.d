/root/repo/target/debug/deps/fig01_per_queue_standard-7c9a9140986fb7fc.d: crates/bench/src/bin/fig01_per_queue_standard.rs

/root/repo/target/debug/deps/fig01_per_queue_standard-7c9a9140986fb7fc: crates/bench/src/bin/fig01_per_queue_standard.rs

crates/bench/src/bin/fig01_per_queue_standard.rs:
