/root/repo/target/debug/deps/fig01_per_queue_standard-e343db1b09855d0f.d: crates/bench/src/bin/fig01_per_queue_standard.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_per_queue_standard-e343db1b09855d0f.rmeta: crates/bench/src/bin/fig01_per_queue_standard.rs Cargo.toml

crates/bench/src/bin/fig01_per_queue_standard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
