/root/repo/target/debug/deps/fig02_fractional_threshold-051f94fa877b2f44.d: crates/bench/src/bin/fig02_fractional_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_fractional_threshold-051f94fa877b2f44.rmeta: crates/bench/src/bin/fig02_fractional_threshold.rs Cargo.toml

crates/bench/src/bin/fig02_fractional_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
