/root/repo/target/debug/deps/fig02_fractional_threshold-c004ca1866ef6de8.d: crates/bench/src/bin/fig02_fractional_threshold.rs

/root/repo/target/debug/deps/fig02_fractional_threshold-c004ca1866ef6de8: crates/bench/src/bin/fig02_fractional_threshold.rs

crates/bench/src/bin/fig02_fractional_threshold.rs:
