/root/repo/target/debug/deps/fig03_per_port_violation-86ea90f85a9b8987.d: crates/bench/src/bin/fig03_per_port_violation.rs

/root/repo/target/debug/deps/fig03_per_port_violation-86ea90f85a9b8987: crates/bench/src/bin/fig03_per_port_violation.rs

crates/bench/src/bin/fig03_per_port_violation.rs:
