/root/repo/target/debug/deps/fig03_per_port_violation-fdad34842c9c3e7b.d: crates/bench/src/bin/fig03_per_port_violation.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_per_port_violation-fdad34842c9c3e7b.rmeta: crates/bench/src/bin/fig03_per_port_violation.rs Cargo.toml

crates/bench/src/bin/fig03_per_port_violation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
