/root/repo/target/debug/deps/fig04_enq_vs_deq-670c0a1deae58900.d: crates/bench/src/bin/fig04_enq_vs_deq.rs

/root/repo/target/debug/deps/fig04_enq_vs_deq-670c0a1deae58900: crates/bench/src/bin/fig04_enq_vs_deq.rs

crates/bench/src/bin/fig04_enq_vs_deq.rs:
