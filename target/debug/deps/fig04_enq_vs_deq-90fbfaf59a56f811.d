/root/repo/target/debug/deps/fig04_enq_vs_deq-90fbfaf59a56f811.d: crates/bench/src/bin/fig04_enq_vs_deq.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_enq_vs_deq-90fbfaf59a56f811.rmeta: crates/bench/src/bin/fig04_enq_vs_deq.rs Cargo.toml

crates/bench/src/bin/fig04_enq_vs_deq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
