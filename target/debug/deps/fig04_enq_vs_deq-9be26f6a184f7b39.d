/root/repo/target/debug/deps/fig04_enq_vs_deq-9be26f6a184f7b39.d: crates/bench/src/bin/fig04_enq_vs_deq.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_enq_vs_deq-9be26f6a184f7b39.rmeta: crates/bench/src/bin/fig04_enq_vs_deq.rs Cargo.toml

crates/bench/src/bin/fig04_enq_vs_deq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
