/root/repo/target/debug/deps/fig05_tcn_no_early-c12ad3d32eea7df0.d: crates/bench/src/bin/fig05_tcn_no_early.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_tcn_no_early-c12ad3d32eea7df0.rmeta: crates/bench/src/bin/fig05_tcn_no_early.rs Cargo.toml

crates/bench/src/bin/fig05_tcn_no_early.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
