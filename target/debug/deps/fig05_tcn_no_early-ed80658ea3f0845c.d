/root/repo/target/debug/deps/fig05_tcn_no_early-ed80658ea3f0845c.d: crates/bench/src/bin/fig05_tcn_no_early.rs

/root/repo/target/debug/deps/fig05_tcn_no_early-ed80658ea3f0845c: crates/bench/src/bin/fig05_tcn_no_early.rs

crates/bench/src/bin/fig05_tcn_no_early.rs:
