/root/repo/target/debug/deps/fig06_port65_1v8-309842727382bba0.d: crates/bench/src/bin/fig06_port65_1v8.rs

/root/repo/target/debug/deps/fig06_port65_1v8-309842727382bba0: crates/bench/src/bin/fig06_port65_1v8.rs

crates/bench/src/bin/fig06_port65_1v8.rs:
