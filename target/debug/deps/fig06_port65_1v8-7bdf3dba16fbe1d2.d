/root/repo/target/debug/deps/fig06_port65_1v8-7bdf3dba16fbe1d2.d: crates/bench/src/bin/fig06_port65_1v8.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_port65_1v8-7bdf3dba16fbe1d2.rmeta: crates/bench/src/bin/fig06_port65_1v8.rs Cargo.toml

crates/bench/src/bin/fig06_port65_1v8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
