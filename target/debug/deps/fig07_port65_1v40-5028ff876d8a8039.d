/root/repo/target/debug/deps/fig07_port65_1v40-5028ff876d8a8039.d: crates/bench/src/bin/fig07_port65_1v40.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_port65_1v40-5028ff876d8a8039.rmeta: crates/bench/src/bin/fig07_port65_1v40.rs Cargo.toml

crates/bench/src/bin/fig07_port65_1v40.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
