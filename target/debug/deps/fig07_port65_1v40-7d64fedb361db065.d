/root/repo/target/debug/deps/fig07_port65_1v40-7d64fedb361db065.d: crates/bench/src/bin/fig07_port65_1v40.rs

/root/repo/target/debug/deps/fig07_port65_1v40-7d64fedb361db065: crates/bench/src/bin/fig07_port65_1v40.rs

crates/bench/src/bin/fig07_port65_1v40.rs:
