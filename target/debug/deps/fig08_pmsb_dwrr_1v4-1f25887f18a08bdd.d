/root/repo/target/debug/deps/fig08_pmsb_dwrr_1v4-1f25887f18a08bdd.d: crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs

/root/repo/target/debug/deps/fig08_pmsb_dwrr_1v4-1f25887f18a08bdd: crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs

crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs:
