/root/repo/target/debug/deps/fig08_pmsb_dwrr_1v4-b25718801ad672b7.d: crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_pmsb_dwrr_1v4-b25718801ad672b7.rmeta: crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs Cargo.toml

crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
