/root/repo/target/debug/deps/fig09_rtt_cdf-46e2e49411d603f2.d: crates/bench/src/bin/fig09_rtt_cdf.rs

/root/repo/target/debug/deps/fig09_rtt_cdf-46e2e49411d603f2: crates/bench/src/bin/fig09_rtt_cdf.rs

crates/bench/src/bin/fig09_rtt_cdf.rs:
