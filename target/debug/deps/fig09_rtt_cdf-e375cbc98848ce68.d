/root/repo/target/debug/deps/fig09_rtt_cdf-e375cbc98848ce68.d: crates/bench/src/bin/fig09_rtt_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_rtt_cdf-e375cbc98848ce68.rmeta: crates/bench/src/bin/fig09_rtt_cdf.rs Cargo.toml

crates/bench/src/bin/fig09_rtt_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
