/root/repo/target/debug/deps/fig10_pmsb_1v100-3f2841479dbf48d0.d: crates/bench/src/bin/fig10_pmsb_1v100.rs

/root/repo/target/debug/deps/fig10_pmsb_1v100-3f2841479dbf48d0: crates/bench/src/bin/fig10_pmsb_1v100.rs

crates/bench/src/bin/fig10_pmsb_1v100.rs:
