/root/repo/target/debug/deps/fig10_pmsb_1v100-f7f0fcda5c2ee9f6.d: crates/bench/src/bin/fig10_pmsb_1v100.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_pmsb_1v100-f7f0fcda5c2ee9f6.rmeta: crates/bench/src/bin/fig10_pmsb_1v100.rs Cargo.toml

crates/bench/src/bin/fig10_pmsb_1v100.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
