/root/repo/target/debug/deps/fig11_12_early_notification-ae1a1e4f7571e5b6.d: crates/bench/src/bin/fig11_12_early_notification.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_12_early_notification-ae1a1e4f7571e5b6.rmeta: crates/bench/src/bin/fig11_12_early_notification.rs Cargo.toml

crates/bench/src/bin/fig11_12_early_notification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
