/root/repo/target/debug/deps/fig11_12_early_notification-e244c9e3a8ade7e7.d: crates/bench/src/bin/fig11_12_early_notification.rs

/root/repo/target/debug/deps/fig11_12_early_notification-e244c9e3a8ade7e7: crates/bench/src/bin/fig11_12_early_notification.rs

crates/bench/src/bin/fig11_12_early_notification.rs:
