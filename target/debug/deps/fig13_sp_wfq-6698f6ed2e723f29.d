/root/repo/target/debug/deps/fig13_sp_wfq-6698f6ed2e723f29.d: crates/bench/src/bin/fig13_sp_wfq.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_sp_wfq-6698f6ed2e723f29.rmeta: crates/bench/src/bin/fig13_sp_wfq.rs Cargo.toml

crates/bench/src/bin/fig13_sp_wfq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
