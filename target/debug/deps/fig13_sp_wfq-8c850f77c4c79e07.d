/root/repo/target/debug/deps/fig13_sp_wfq-8c850f77c4c79e07.d: crates/bench/src/bin/fig13_sp_wfq.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_sp_wfq-8c850f77c4c79e07.rmeta: crates/bench/src/bin/fig13_sp_wfq.rs Cargo.toml

crates/bench/src/bin/fig13_sp_wfq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
