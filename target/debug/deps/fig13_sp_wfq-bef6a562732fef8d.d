/root/repo/target/debug/deps/fig13_sp_wfq-bef6a562732fef8d.d: crates/bench/src/bin/fig13_sp_wfq.rs

/root/repo/target/debug/deps/fig13_sp_wfq-bef6a562732fef8d: crates/bench/src/bin/fig13_sp_wfq.rs

crates/bench/src/bin/fig13_sp_wfq.rs:
