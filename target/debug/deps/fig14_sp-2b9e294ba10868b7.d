/root/repo/target/debug/deps/fig14_sp-2b9e294ba10868b7.d: crates/bench/src/bin/fig14_sp.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_sp-2b9e294ba10868b7.rmeta: crates/bench/src/bin/fig14_sp.rs Cargo.toml

crates/bench/src/bin/fig14_sp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
