/root/repo/target/debug/deps/fig14_sp-8bfc5d87815305ab.d: crates/bench/src/bin/fig14_sp.rs

/root/repo/target/debug/deps/fig14_sp-8bfc5d87815305ab: crates/bench/src/bin/fig14_sp.rs

crates/bench/src/bin/fig14_sp.rs:
