/root/repo/target/debug/deps/fig15_wfq-38fb89a938d83c14.d: crates/bench/src/bin/fig15_wfq.rs

/root/repo/target/debug/deps/fig15_wfq-38fb89a938d83c14: crates/bench/src/bin/fig15_wfq.rs

crates/bench/src/bin/fig15_wfq.rs:
