/root/repo/target/debug/deps/fig15_wfq-3b495a02d6f9bdfc.d: crates/bench/src/bin/fig15_wfq.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_wfq-3b495a02d6f9bdfc.rmeta: crates/bench/src/bin/fig15_wfq.rs Cargo.toml

crates/bench/src/bin/fig15_wfq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
