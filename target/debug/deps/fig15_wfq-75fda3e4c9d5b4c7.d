/root/repo/target/debug/deps/fig15_wfq-75fda3e4c9d5b4c7.d: crates/bench/src/bin/fig15_wfq.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_wfq-75fda3e4c9d5b4c7.rmeta: crates/bench/src/bin/fig15_wfq.rs Cargo.toml

crates/bench/src/bin/fig15_wfq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
