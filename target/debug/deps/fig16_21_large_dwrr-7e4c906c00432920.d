/root/repo/target/debug/deps/fig16_21_large_dwrr-7e4c906c00432920.d: crates/bench/src/bin/fig16_21_large_dwrr.rs

/root/repo/target/debug/deps/fig16_21_large_dwrr-7e4c906c00432920: crates/bench/src/bin/fig16_21_large_dwrr.rs

crates/bench/src/bin/fig16_21_large_dwrr.rs:
