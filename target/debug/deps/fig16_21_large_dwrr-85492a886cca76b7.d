/root/repo/target/debug/deps/fig16_21_large_dwrr-85492a886cca76b7.d: crates/bench/src/bin/fig16_21_large_dwrr.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_21_large_dwrr-85492a886cca76b7.rmeta: crates/bench/src/bin/fig16_21_large_dwrr.rs Cargo.toml

crates/bench/src/bin/fig16_21_large_dwrr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
