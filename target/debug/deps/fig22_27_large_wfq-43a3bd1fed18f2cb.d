/root/repo/target/debug/deps/fig22_27_large_wfq-43a3bd1fed18f2cb.d: crates/bench/src/bin/fig22_27_large_wfq.rs Cargo.toml

/root/repo/target/debug/deps/libfig22_27_large_wfq-43a3bd1fed18f2cb.rmeta: crates/bench/src/bin/fig22_27_large_wfq.rs Cargo.toml

crates/bench/src/bin/fig22_27_large_wfq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
