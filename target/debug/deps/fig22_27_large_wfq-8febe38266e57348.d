/root/repo/target/debug/deps/fig22_27_large_wfq-8febe38266e57348.d: crates/bench/src/bin/fig22_27_large_wfq.rs

/root/repo/target/debug/deps/fig22_27_large_wfq-8febe38266e57348: crates/bench/src/bin/fig22_27_large_wfq.rs

crates/bench/src/bin/fig22_27_large_wfq.rs:
