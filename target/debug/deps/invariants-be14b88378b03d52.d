/root/repo/target/debug/deps/invariants-be14b88378b03d52.d: crates/netsim/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-be14b88378b03d52.rmeta: crates/netsim/tests/invariants.rs Cargo.toml

crates/netsim/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
