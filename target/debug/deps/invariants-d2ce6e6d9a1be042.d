/root/repo/target/debug/deps/invariants-d2ce6e6d9a1be042.d: crates/netsim/tests/invariants.rs

/root/repo/target/debug/deps/invariants-d2ce6e6d9a1be042: crates/netsim/tests/invariants.rs

crates/netsim/tests/invariants.rs:
