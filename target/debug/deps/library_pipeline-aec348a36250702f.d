/root/repo/target/debug/deps/library_pipeline-aec348a36250702f.d: tests/library_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/liblibrary_pipeline-aec348a36250702f.rmeta: tests/library_pipeline.rs Cargo.toml

tests/library_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
