/root/repo/target/debug/deps/library_pipeline-c7a7debd12e7315d.d: tests/library_pipeline.rs

/root/repo/target/debug/deps/library_pipeline-c7a7debd12e7315d: tests/library_pipeline.rs

tests/library_pipeline.rs:
