/root/repo/target/debug/deps/microbench-36dcd4cd638a67d5.d: crates/bench/src/bin/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-36dcd4cd638a67d5.rmeta: crates/bench/src/bin/microbench.rs Cargo.toml

crates/bench/src/bin/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
