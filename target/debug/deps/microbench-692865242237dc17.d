/root/repo/target/debug/deps/microbench-692865242237dc17.d: crates/bench/src/bin/microbench.rs

/root/repo/target/debug/deps/microbench-692865242237dc17: crates/bench/src/bin/microbench.rs

crates/bench/src/bin/microbench.rs:
