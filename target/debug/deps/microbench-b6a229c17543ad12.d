/root/repo/target/debug/deps/microbench-b6a229c17543ad12.d: crates/bench/src/bin/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-b6a229c17543ad12.rmeta: crates/bench/src/bin/microbench.rs Cargo.toml

crates/bench/src/bin/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
