/root/repo/target/debug/deps/paper_phenomena-97f8828e436874d2.d: tests/paper_phenomena.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_phenomena-97f8828e436874d2.rmeta: tests/paper_phenomena.rs Cargo.toml

tests/paper_phenomena.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
