/root/repo/target/debug/deps/paper_phenomena-a2514e4f4c010dd6.d: tests/paper_phenomena.rs

/root/repo/target/debug/deps/paper_phenomena-a2514e4f4c010dd6: tests/paper_phenomena.rs

tests/paper_phenomena.rs:
