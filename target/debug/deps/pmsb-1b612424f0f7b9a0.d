/root/repo/target/debug/deps/pmsb-1b612424f0f7b9a0.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs

/root/repo/target/debug/deps/pmsb-1b612424f0f7b9a0: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/endpoint.rs:
crates/core/src/marking/mod.rs:
crates/core/src/marking/mq_ecn.rs:
crates/core/src/marking/per_port.rs:
crates/core/src/marking/per_queue.rs:
crates/core/src/marking/pmsb.rs:
crates/core/src/marking/pool.rs:
crates/core/src/marking/red.rs:
crates/core/src/marking/tcn.rs:
crates/core/src/profile.rs:
crates/core/src/view.rs:
