/root/repo/target/debug/deps/pmsb-3a65cfbe0ab2ff48.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb-3a65cfbe0ab2ff48.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/endpoint.rs:
crates/core/src/marking/mod.rs:
crates/core/src/marking/mq_ecn.rs:
crates/core/src/marking/per_port.rs:
crates/core/src/marking/per_queue.rs:
crates/core/src/marking/pmsb.rs:
crates/core/src/marking/pool.rs:
crates/core/src/marking/red.rs:
crates/core/src/marking/tcn.rs:
crates/core/src/profile.rs:
crates/core/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
