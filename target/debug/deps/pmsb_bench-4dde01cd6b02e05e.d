/root/repo/target/debug/deps/pmsb_bench-4dde01cd6b02e05e.d: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_bench-4dde01cd6b02e05e.rmeta: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/campaigns.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/large_scale.rs:
crates/bench/src/micro.rs:
crates/bench/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
