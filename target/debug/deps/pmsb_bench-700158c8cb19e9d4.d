/root/repo/target/debug/deps/pmsb_bench-700158c8cb19e9d4.d: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/pmsb_bench-700158c8cb19e9d4: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/campaigns.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/large_scale.rs:
crates/bench/src/micro.rs:
crates/bench/src/util.rs:
