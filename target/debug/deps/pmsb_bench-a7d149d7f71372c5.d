/root/repo/target/debug/deps/pmsb_bench-a7d149d7f71372c5.d: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/libpmsb_bench-a7d149d7f71372c5.rlib: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

/root/repo/target/debug/deps/libpmsb_bench-a7d149d7f71372c5.rmeta: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/campaigns.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/large_scale.rs:
crates/bench/src/micro.rs:
crates/bench/src/util.rs:
