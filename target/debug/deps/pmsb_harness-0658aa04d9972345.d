/root/repo/target/debug/deps/pmsb_harness-0658aa04d9972345.d: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

/root/repo/target/debug/deps/pmsb_harness-0658aa04d9972345: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

crates/harness/src/lib.rs:
crates/harness/src/pool.rs:
crates/harness/src/record.rs:
crates/harness/src/store.rs:
