/root/repo/target/debug/deps/pmsb_harness-817b6d984e31b83a.d: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_harness-817b6d984e31b83a.rmeta: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/pool.rs:
crates/harness/src/record.rs:
crates/harness/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
