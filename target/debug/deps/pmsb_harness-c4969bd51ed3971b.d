/root/repo/target/debug/deps/pmsb_harness-c4969bd51ed3971b.d: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

/root/repo/target/debug/deps/libpmsb_harness-c4969bd51ed3971b.rlib: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

/root/repo/target/debug/deps/libpmsb_harness-c4969bd51ed3971b.rmeta: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

crates/harness/src/lib.rs:
crates/harness/src/pool.rs:
crates/harness/src/record.rs:
crates/harness/src/store.rs:
