/root/repo/target/debug/deps/pmsb_harness-e32996249ab8ecc7.d: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_harness-e32996249ab8ecc7.rmeta: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/pool.rs:
crates/harness/src/record.rs:
crates/harness/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
