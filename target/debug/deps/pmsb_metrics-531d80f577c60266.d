/root/repo/target/debug/deps/pmsb_metrics-531d80f577c60266.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/pmsb_metrics-531d80f577c60266: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
