/root/repo/target/debug/deps/pmsb_metrics-75219eb5f322fccf.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_metrics-75219eb5f322fccf.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
