/root/repo/target/debug/deps/pmsb_metrics-a3b99c27cc12e6d7.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libpmsb_metrics-a3b99c27cc12e6d7.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libpmsb_metrics-a3b99c27cc12e6d7.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
