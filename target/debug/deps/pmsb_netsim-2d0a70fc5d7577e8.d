/root/repo/target/debug/deps/pmsb_netsim-2d0a70fc5d7577e8.d: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_netsim-2d0a70fc5d7577e8.rmeta: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/config.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
