/root/repo/target/debug/deps/pmsb_netsim-4b2685341ecb23ae.d: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

/root/repo/target/debug/deps/pmsb_netsim-4b2685341ecb23ae: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

crates/netsim/src/lib.rs:
crates/netsim/src/config.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/world.rs:
