/root/repo/target/debug/deps/pmsb_netsim-a68b58a06de32181.d: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

/root/repo/target/debug/deps/libpmsb_netsim-a68b58a06de32181.rlib: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

/root/repo/target/debug/deps/libpmsb_netsim-a68b58a06de32181.rmeta: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

crates/netsim/src/lib.rs:
crates/netsim/src/config.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/world.rs:
