/root/repo/target/debug/deps/pmsb_repro-236e5af49b708d23.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_repro-236e5af49b708d23.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
