/root/repo/target/debug/deps/pmsb_repro-3de687c3e149921e.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libpmsb_repro-3de687c3e149921e.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libpmsb_repro-3de687c3e149921e.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
