/root/repo/target/debug/deps/pmsb_repro-4507c84d6e046343.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_repro-4507c84d6e046343.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
