/root/repo/target/debug/deps/pmsb_repro-b634739dce18140c.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/pmsb_repro-b634739dce18140c: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
