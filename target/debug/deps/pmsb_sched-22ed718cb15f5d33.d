/root/repo/target/debug/deps/pmsb_sched-22ed718cb15f5d33.d: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

/root/repo/target/debug/deps/libpmsb_sched-22ed718cb15f5d33.rlib: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

/root/repo/target/debug/deps/libpmsb_sched-22ed718cb15f5d33.rmeta: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

crates/sched/src/lib.rs:
crates/sched/src/dwrr.rs:
crates/sched/src/fifo.rs:
crates/sched/src/hier.rs:
crates/sched/src/multi_queue.rs:
crates/sched/src/round.rs:
crates/sched/src/sp.rs:
crates/sched/src/wfq.rs:
crates/sched/src/wrr.rs:
