/root/repo/target/debug/deps/pmsb_sched-3c93456e61b6e59e.d: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

/root/repo/target/debug/deps/pmsb_sched-3c93456e61b6e59e: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

crates/sched/src/lib.rs:
crates/sched/src/dwrr.rs:
crates/sched/src/fifo.rs:
crates/sched/src/hier.rs:
crates/sched/src/multi_queue.rs:
crates/sched/src/round.rs:
crates/sched/src/sp.rs:
crates/sched/src/wfq.rs:
crates/sched/src/wrr.rs:
