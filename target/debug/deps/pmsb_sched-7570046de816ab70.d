/root/repo/target/debug/deps/pmsb_sched-7570046de816ab70.d: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_sched-7570046de816ab70.rmeta: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/dwrr.rs:
crates/sched/src/fifo.rs:
crates/sched/src/hier.rs:
crates/sched/src/multi_queue.rs:
crates/sched/src/round.rs:
crates/sched/src/sp.rs:
crates/sched/src/wfq.rs:
crates/sched/src/wrr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
