/root/repo/target/debug/deps/pmsb_sim-69f2f7695a1a2f1e.d: src/bin/pmsb-sim.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_sim-69f2f7695a1a2f1e.rmeta: src/bin/pmsb-sim.rs Cargo.toml

src/bin/pmsb-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
