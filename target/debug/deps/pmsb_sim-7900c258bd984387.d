/root/repo/target/debug/deps/pmsb_sim-7900c258bd984387.d: src/bin/pmsb-sim.rs

/root/repo/target/debug/deps/pmsb_sim-7900c258bd984387: src/bin/pmsb-sim.rs

src/bin/pmsb-sim.rs:
