/root/repo/target/debug/deps/pmsb_sim-99107b72f830b484.d: src/bin/pmsb-sim.rs

/root/repo/target/debug/deps/pmsb_sim-99107b72f830b484: src/bin/pmsb-sim.rs

src/bin/pmsb-sim.rs:
