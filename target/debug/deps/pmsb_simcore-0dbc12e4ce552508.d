/root/repo/target/debug/deps/pmsb_simcore-0dbc12e4ce552508.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libpmsb_simcore-0dbc12e4ce552508.rlib: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libpmsb_simcore-0dbc12e4ce552508.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
