/root/repo/target/debug/deps/pmsb_simcore-9d95762ded082449.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_simcore-9d95762ded082449.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
