/root/repo/target/debug/deps/pmsb_simcore-f241d1a8e3c72d1f.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/pmsb_simcore-f241d1a8e3c72d1f: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
