/root/repo/target/debug/deps/pmsb_workload-3ce9e8212a6686ef.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/pmsb_workload-3ce9e8212a6686ef: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/size.rs:
crates/workload/src/traffic.rs:
