/root/repo/target/debug/deps/pmsb_workload-805b773abe48df58.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/libpmsb_workload-805b773abe48df58.rlib: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/libpmsb_workload-805b773abe48df58.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/size.rs:
crates/workload/src/traffic.rs:
