/root/repo/target/debug/deps/pmsb_workload-813b9b3f16a3ecab.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_workload-813b9b3f16a3ecab.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/size.rs:
crates/workload/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
