/root/repo/target/debug/deps/pmsb_workload-925a9de78d903b0d.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libpmsb_workload-925a9de78d903b0d.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/size.rs:
crates/workload/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
