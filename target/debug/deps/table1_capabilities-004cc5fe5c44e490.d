/root/repo/target/debug/deps/table1_capabilities-004cc5fe5c44e490.d: crates/bench/src/bin/table1_capabilities.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_capabilities-004cc5fe5c44e490.rmeta: crates/bench/src/bin/table1_capabilities.rs Cargo.toml

crates/bench/src/bin/table1_capabilities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
