/root/repo/target/debug/deps/table1_capabilities-7ad08371bd791a98.d: crates/bench/src/bin/table1_capabilities.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_capabilities-7ad08371bd791a98.rmeta: crates/bench/src/bin/table1_capabilities.rs Cargo.toml

crates/bench/src/bin/table1_capabilities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
