/root/repo/target/debug/deps/table1_capabilities-b4ff735c048ca108.d: crates/bench/src/bin/table1_capabilities.rs

/root/repo/target/debug/deps/table1_capabilities-b4ff735c048ca108: crates/bench/src/bin/table1_capabilities.rs

crates/bench/src/bin/table1_capabilities.rs:
