/root/repo/target/debug/deps/thm_iv1_validation-2dfbb6c7ea1f3192.d: crates/bench/src/bin/thm_iv1_validation.rs

/root/repo/target/debug/deps/thm_iv1_validation-2dfbb6c7ea1f3192: crates/bench/src/bin/thm_iv1_validation.rs

crates/bench/src/bin/thm_iv1_validation.rs:
