/root/repo/target/debug/deps/thm_iv1_validation-6f285f9a1b59058a.d: crates/bench/src/bin/thm_iv1_validation.rs Cargo.toml

/root/repo/target/debug/deps/libthm_iv1_validation-6f285f9a1b59058a.rmeta: crates/bench/src/bin/thm_iv1_validation.rs Cargo.toml

crates/bench/src/bin/thm_iv1_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
