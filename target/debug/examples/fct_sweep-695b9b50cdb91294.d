/root/repo/target/debug/examples/fct_sweep-695b9b50cdb91294.d: examples/fct_sweep.rs

/root/repo/target/debug/examples/fct_sweep-695b9b50cdb91294: examples/fct_sweep.rs

examples/fct_sweep.rs:
