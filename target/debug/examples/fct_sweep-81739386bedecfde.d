/root/repo/target/debug/examples/fct_sweep-81739386bedecfde.d: examples/fct_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libfct_sweep-81739386bedecfde.rmeta: examples/fct_sweep.rs Cargo.toml

examples/fct_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
