/root/repo/target/debug/examples/quickstart-9d604fecde44118a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9d604fecde44118a: examples/quickstart.rs

examples/quickstart.rs:
