/root/repo/target/debug/examples/scheduler_zoo-57385f5e20a34562.d: examples/scheduler_zoo.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_zoo-57385f5e20a34562.rmeta: examples/scheduler_zoo.rs Cargo.toml

examples/scheduler_zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
