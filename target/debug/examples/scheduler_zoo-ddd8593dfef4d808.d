/root/repo/target/debug/examples/scheduler_zoo-ddd8593dfef4d808.d: examples/scheduler_zoo.rs

/root/repo/target/debug/examples/scheduler_zoo-ddd8593dfef4d808: examples/scheduler_zoo.rs

examples/scheduler_zoo.rs:
