/root/repo/target/debug/examples/selective_blindness-1ddc914bb3504288.d: examples/selective_blindness.rs

/root/repo/target/debug/examples/selective_blindness-1ddc914bb3504288: examples/selective_blindness.rs

examples/selective_blindness.rs:
