/root/repo/target/debug/examples/selective_blindness-b69b971542f8ee5f.d: examples/selective_blindness.rs Cargo.toml

/root/repo/target/debug/examples/libselective_blindness-b69b971542f8ee5f.rmeta: examples/selective_blindness.rs Cargo.toml

examples/selective_blindness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
