/root/repo/target/debug/examples/weighted_fair_sharing-381f5876f465c61e.d: examples/weighted_fair_sharing.rs Cargo.toml

/root/repo/target/debug/examples/libweighted_fair_sharing-381f5876f465c61e.rmeta: examples/weighted_fair_sharing.rs Cargo.toml

examples/weighted_fair_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
