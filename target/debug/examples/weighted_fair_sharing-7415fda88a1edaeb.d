/root/repo/target/debug/examples/weighted_fair_sharing-7415fda88a1edaeb.d: examples/weighted_fair_sharing.rs

/root/repo/target/debug/examples/weighted_fair_sharing-7415fda88a1edaeb: examples/weighted_fair_sharing.rs

examples/weighted_fair_sharing.rs:
