/root/repo/target/release/deps/ablation_classic_ecn-6e4d6ed3b3d1d7b5.d: crates/bench/src/bin/ablation_classic_ecn.rs

/root/repo/target/release/deps/ablation_classic_ecn-6e4d6ed3b3d1d7b5: crates/bench/src/bin/ablation_classic_ecn.rs

crates/bench/src/bin/ablation_classic_ecn.rs:
