/root/repo/target/release/deps/ablation_delayed_acks-a65b5999e757905a.d: crates/bench/src/bin/ablation_delayed_acks.rs

/root/repo/target/release/deps/ablation_delayed_acks-a65b5999e757905a: crates/bench/src/bin/ablation_delayed_acks.rs

crates/bench/src/bin/ablation_delayed_acks.rs:
