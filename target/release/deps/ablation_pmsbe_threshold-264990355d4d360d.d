/root/repo/target/release/deps/ablation_pmsbe_threshold-264990355d4d360d.d: crates/bench/src/bin/ablation_pmsbe_threshold.rs

/root/repo/target/release/deps/ablation_pmsbe_threshold-264990355d4d360d: crates/bench/src/bin/ablation_pmsbe_threshold.rs

crates/bench/src/bin/ablation_pmsbe_threshold.rs:
