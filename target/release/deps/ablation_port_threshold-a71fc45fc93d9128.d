/root/repo/target/release/deps/ablation_port_threshold-a71fc45fc93d9128.d: crates/bench/src/bin/ablation_port_threshold.rs

/root/repo/target/release/deps/ablation_port_threshold-a71fc45fc93d9128: crates/bench/src/bin/ablation_port_threshold.rs

crates/bench/src/bin/ablation_port_threshold.rs:
