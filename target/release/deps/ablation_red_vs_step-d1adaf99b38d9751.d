/root/repo/target/release/deps/ablation_red_vs_step-d1adaf99b38d9751.d: crates/bench/src/bin/ablation_red_vs_step.rs

/root/repo/target/release/deps/ablation_red_vs_step-d1adaf99b38d9751: crates/bench/src/bin/ablation_red_vs_step.rs

crates/bench/src/bin/ablation_red_vs_step.rs:
