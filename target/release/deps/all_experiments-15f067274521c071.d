/root/repo/target/release/deps/all_experiments-15f067274521c071.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-15f067274521c071: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
