/root/repo/target/release/deps/ext_datamining_workload-c59e76a94c0b1a2f.d: crates/bench/src/bin/ext_datamining_workload.rs

/root/repo/target/release/deps/ext_datamining_workload-c59e76a94c0b1a2f: crates/bench/src/bin/ext_datamining_workload.rs

crates/bench/src/bin/ext_datamining_workload.rs:
