/root/repo/target/release/deps/ext_dynamic_threshold-ce54fb85890a8af6.d: crates/bench/src/bin/ext_dynamic_threshold.rs

/root/repo/target/release/deps/ext_dynamic_threshold-ce54fb85890a8af6: crates/bench/src/bin/ext_dynamic_threshold.rs

crates/bench/src/bin/ext_dynamic_threshold.rs:
