/root/repo/target/release/deps/ext_incast-97e35cf772f66a1c.d: crates/bench/src/bin/ext_incast.rs

/root/repo/target/release/deps/ext_incast-97e35cf772f66a1c: crates/bench/src/bin/ext_incast.rs

crates/bench/src/bin/ext_incast.rs:
