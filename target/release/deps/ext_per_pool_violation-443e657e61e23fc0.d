/root/repo/target/release/deps/ext_per_pool_violation-443e657e61e23fc0.d: crates/bench/src/bin/ext_per_pool_violation.rs

/root/repo/target/release/deps/ext_per_pool_violation-443e657e61e23fc0: crates/bench/src/bin/ext_per_pool_violation.rs

crates/bench/src/bin/ext_per_pool_violation.rs:
