/root/repo/target/release/deps/ext_seed_sensitivity-5f20f4b7bf9652c0.d: crates/bench/src/bin/ext_seed_sensitivity.rs

/root/repo/target/release/deps/ext_seed_sensitivity-5f20f4b7bf9652c0: crates/bench/src/bin/ext_seed_sensitivity.rs

crates/bench/src/bin/ext_seed_sensitivity.rs:
