/root/repo/target/release/deps/ext_websearch_workload-4a0d89432b3e8c23.d: crates/bench/src/bin/ext_websearch_workload.rs

/root/repo/target/release/deps/ext_websearch_workload-4a0d89432b3e8c23: crates/bench/src/bin/ext_websearch_workload.rs

crates/bench/src/bin/ext_websearch_workload.rs:
