/root/repo/target/release/deps/fig01_per_queue_standard-d221903bbb017fec.d: crates/bench/src/bin/fig01_per_queue_standard.rs

/root/repo/target/release/deps/fig01_per_queue_standard-d221903bbb017fec: crates/bench/src/bin/fig01_per_queue_standard.rs

crates/bench/src/bin/fig01_per_queue_standard.rs:
