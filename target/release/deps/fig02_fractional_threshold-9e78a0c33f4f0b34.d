/root/repo/target/release/deps/fig02_fractional_threshold-9e78a0c33f4f0b34.d: crates/bench/src/bin/fig02_fractional_threshold.rs

/root/repo/target/release/deps/fig02_fractional_threshold-9e78a0c33f4f0b34: crates/bench/src/bin/fig02_fractional_threshold.rs

crates/bench/src/bin/fig02_fractional_threshold.rs:
