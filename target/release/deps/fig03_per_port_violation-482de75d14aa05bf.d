/root/repo/target/release/deps/fig03_per_port_violation-482de75d14aa05bf.d: crates/bench/src/bin/fig03_per_port_violation.rs

/root/repo/target/release/deps/fig03_per_port_violation-482de75d14aa05bf: crates/bench/src/bin/fig03_per_port_violation.rs

crates/bench/src/bin/fig03_per_port_violation.rs:
