/root/repo/target/release/deps/fig04_enq_vs_deq-d3c619e6eb8791c5.d: crates/bench/src/bin/fig04_enq_vs_deq.rs

/root/repo/target/release/deps/fig04_enq_vs_deq-d3c619e6eb8791c5: crates/bench/src/bin/fig04_enq_vs_deq.rs

crates/bench/src/bin/fig04_enq_vs_deq.rs:
