/root/repo/target/release/deps/fig05_tcn_no_early-56d42f5b4fc99443.d: crates/bench/src/bin/fig05_tcn_no_early.rs

/root/repo/target/release/deps/fig05_tcn_no_early-56d42f5b4fc99443: crates/bench/src/bin/fig05_tcn_no_early.rs

crates/bench/src/bin/fig05_tcn_no_early.rs:
