/root/repo/target/release/deps/fig06_port65_1v8-7df1002cf873005b.d: crates/bench/src/bin/fig06_port65_1v8.rs

/root/repo/target/release/deps/fig06_port65_1v8-7df1002cf873005b: crates/bench/src/bin/fig06_port65_1v8.rs

crates/bench/src/bin/fig06_port65_1v8.rs:
