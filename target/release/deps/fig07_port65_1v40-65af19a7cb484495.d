/root/repo/target/release/deps/fig07_port65_1v40-65af19a7cb484495.d: crates/bench/src/bin/fig07_port65_1v40.rs

/root/repo/target/release/deps/fig07_port65_1v40-65af19a7cb484495: crates/bench/src/bin/fig07_port65_1v40.rs

crates/bench/src/bin/fig07_port65_1v40.rs:
