/root/repo/target/release/deps/fig08_pmsb_dwrr_1v4-5dde7effdb3a9593.d: crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs

/root/repo/target/release/deps/fig08_pmsb_dwrr_1v4-5dde7effdb3a9593: crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs

crates/bench/src/bin/fig08_pmsb_dwrr_1v4.rs:
