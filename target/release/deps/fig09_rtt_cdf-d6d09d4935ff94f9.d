/root/repo/target/release/deps/fig09_rtt_cdf-d6d09d4935ff94f9.d: crates/bench/src/bin/fig09_rtt_cdf.rs

/root/repo/target/release/deps/fig09_rtt_cdf-d6d09d4935ff94f9: crates/bench/src/bin/fig09_rtt_cdf.rs

crates/bench/src/bin/fig09_rtt_cdf.rs:
