/root/repo/target/release/deps/fig10_pmsb_1v100-88289aef5238c698.d: crates/bench/src/bin/fig10_pmsb_1v100.rs

/root/repo/target/release/deps/fig10_pmsb_1v100-88289aef5238c698: crates/bench/src/bin/fig10_pmsb_1v100.rs

crates/bench/src/bin/fig10_pmsb_1v100.rs:
