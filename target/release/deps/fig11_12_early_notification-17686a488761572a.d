/root/repo/target/release/deps/fig11_12_early_notification-17686a488761572a.d: crates/bench/src/bin/fig11_12_early_notification.rs

/root/repo/target/release/deps/fig11_12_early_notification-17686a488761572a: crates/bench/src/bin/fig11_12_early_notification.rs

crates/bench/src/bin/fig11_12_early_notification.rs:
