/root/repo/target/release/deps/fig13_sp_wfq-c8f3498f38980c0f.d: crates/bench/src/bin/fig13_sp_wfq.rs

/root/repo/target/release/deps/fig13_sp_wfq-c8f3498f38980c0f: crates/bench/src/bin/fig13_sp_wfq.rs

crates/bench/src/bin/fig13_sp_wfq.rs:
