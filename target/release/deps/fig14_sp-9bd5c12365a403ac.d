/root/repo/target/release/deps/fig14_sp-9bd5c12365a403ac.d: crates/bench/src/bin/fig14_sp.rs

/root/repo/target/release/deps/fig14_sp-9bd5c12365a403ac: crates/bench/src/bin/fig14_sp.rs

crates/bench/src/bin/fig14_sp.rs:
