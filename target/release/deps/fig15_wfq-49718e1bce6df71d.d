/root/repo/target/release/deps/fig15_wfq-49718e1bce6df71d.d: crates/bench/src/bin/fig15_wfq.rs

/root/repo/target/release/deps/fig15_wfq-49718e1bce6df71d: crates/bench/src/bin/fig15_wfq.rs

crates/bench/src/bin/fig15_wfq.rs:
