/root/repo/target/release/deps/fig16_21_large_dwrr-083f0f4b3a49f26f.d: crates/bench/src/bin/fig16_21_large_dwrr.rs

/root/repo/target/release/deps/fig16_21_large_dwrr-083f0f4b3a49f26f: crates/bench/src/bin/fig16_21_large_dwrr.rs

crates/bench/src/bin/fig16_21_large_dwrr.rs:
