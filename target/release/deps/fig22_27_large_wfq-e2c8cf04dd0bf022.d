/root/repo/target/release/deps/fig22_27_large_wfq-e2c8cf04dd0bf022.d: crates/bench/src/bin/fig22_27_large_wfq.rs

/root/repo/target/release/deps/fig22_27_large_wfq-e2c8cf04dd0bf022: crates/bench/src/bin/fig22_27_large_wfq.rs

crates/bench/src/bin/fig22_27_large_wfq.rs:
