/root/repo/target/release/deps/microbench-1d07261f83b451a5.d: crates/bench/src/bin/microbench.rs

/root/repo/target/release/deps/microbench-1d07261f83b451a5: crates/bench/src/bin/microbench.rs

crates/bench/src/bin/microbench.rs:
