/root/repo/target/release/deps/pmsb-d8973f6e2bb66d95.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs

/root/repo/target/release/deps/libpmsb-d8973f6e2bb66d95.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs

/root/repo/target/release/deps/libpmsb-d8973f6e2bb66d95.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/endpoint.rs crates/core/src/marking/mod.rs crates/core/src/marking/mq_ecn.rs crates/core/src/marking/per_port.rs crates/core/src/marking/per_queue.rs crates/core/src/marking/pmsb.rs crates/core/src/marking/pool.rs crates/core/src/marking/red.rs crates/core/src/marking/tcn.rs crates/core/src/profile.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/endpoint.rs:
crates/core/src/marking/mod.rs:
crates/core/src/marking/mq_ecn.rs:
crates/core/src/marking/per_port.rs:
crates/core/src/marking/per_queue.rs:
crates/core/src/marking/pmsb.rs:
crates/core/src/marking/pool.rs:
crates/core/src/marking/red.rs:
crates/core/src/marking/tcn.rs:
crates/core/src/profile.rs:
crates/core/src/view.rs:
