/root/repo/target/release/deps/pmsb_bench-97ff74a2bdef913f.d: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

/root/repo/target/release/deps/libpmsb_bench-97ff74a2bdef913f.rlib: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

/root/repo/target/release/deps/libpmsb_bench-97ff74a2bdef913f.rmeta: crates/bench/src/lib.rs crates/bench/src/campaigns.rs crates/bench/src/extensions.rs crates/bench/src/figures.rs crates/bench/src/large_scale.rs crates/bench/src/micro.rs crates/bench/src/util.rs

crates/bench/src/lib.rs:
crates/bench/src/campaigns.rs:
crates/bench/src/extensions.rs:
crates/bench/src/figures.rs:
crates/bench/src/large_scale.rs:
crates/bench/src/micro.rs:
crates/bench/src/util.rs:
