/root/repo/target/release/deps/pmsb_harness-35daab067e8314f5.d: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

/root/repo/target/release/deps/libpmsb_harness-35daab067e8314f5.rlib: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

/root/repo/target/release/deps/libpmsb_harness-35daab067e8314f5.rmeta: crates/harness/src/lib.rs crates/harness/src/pool.rs crates/harness/src/record.rs crates/harness/src/store.rs

crates/harness/src/lib.rs:
crates/harness/src/pool.rs:
crates/harness/src/record.rs:
crates/harness/src/store.rs:
