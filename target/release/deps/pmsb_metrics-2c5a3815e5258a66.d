/root/repo/target/release/deps/pmsb_metrics-2c5a3815e5258a66.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/release/deps/libpmsb_metrics-2c5a3815e5258a66.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/release/deps/libpmsb_metrics-2c5a3815e5258a66.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/fct.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
