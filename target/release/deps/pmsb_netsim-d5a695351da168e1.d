/root/repo/target/release/deps/pmsb_netsim-d5a695351da168e1.d: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

/root/repo/target/release/deps/libpmsb_netsim-d5a695351da168e1.rlib: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

/root/repo/target/release/deps/libpmsb_netsim-d5a695351da168e1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/config.rs crates/netsim/src/experiment.rs crates/netsim/src/packet.rs crates/netsim/src/routing.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs crates/netsim/src/world.rs

crates/netsim/src/lib.rs:
crates/netsim/src/config.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/world.rs:
