/root/repo/target/release/deps/pmsb_repro-cc0b060fb340276b.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libpmsb_repro-cc0b060fb340276b.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libpmsb_repro-cc0b060fb340276b.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
