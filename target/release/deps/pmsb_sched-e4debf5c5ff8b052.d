/root/repo/target/release/deps/pmsb_sched-e4debf5c5ff8b052.d: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

/root/repo/target/release/deps/libpmsb_sched-e4debf5c5ff8b052.rlib: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

/root/repo/target/release/deps/libpmsb_sched-e4debf5c5ff8b052.rmeta: crates/sched/src/lib.rs crates/sched/src/dwrr.rs crates/sched/src/fifo.rs crates/sched/src/hier.rs crates/sched/src/multi_queue.rs crates/sched/src/round.rs crates/sched/src/sp.rs crates/sched/src/wfq.rs crates/sched/src/wrr.rs

crates/sched/src/lib.rs:
crates/sched/src/dwrr.rs:
crates/sched/src/fifo.rs:
crates/sched/src/hier.rs:
crates/sched/src/multi_queue.rs:
crates/sched/src/round.rs:
crates/sched/src/sp.rs:
crates/sched/src/wfq.rs:
crates/sched/src/wrr.rs:
