/root/repo/target/release/deps/pmsb_sim-0dd1388f94a345b2.d: src/bin/pmsb-sim.rs

/root/repo/target/release/deps/pmsb_sim-0dd1388f94a345b2: src/bin/pmsb-sim.rs

src/bin/pmsb-sim.rs:
