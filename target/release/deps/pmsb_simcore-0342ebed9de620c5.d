/root/repo/target/release/deps/pmsb_simcore-0342ebed9de620c5.d: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libpmsb_simcore-0342ebed9de620c5.rlib: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libpmsb_simcore-0342ebed9de620c5.rmeta: crates/simcore/src/lib.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
