/root/repo/target/release/deps/pmsb_workload-ae05f6d5a31061ff.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/libpmsb_workload-ae05f6d5a31061ff.rlib: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/libpmsb_workload-ae05f6d5a31061ff.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/size.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/size.rs:
crates/workload/src/traffic.rs:
