/root/repo/target/release/deps/table1_capabilities-c2c189207290c83f.d: crates/bench/src/bin/table1_capabilities.rs

/root/repo/target/release/deps/table1_capabilities-c2c189207290c83f: crates/bench/src/bin/table1_capabilities.rs

crates/bench/src/bin/table1_capabilities.rs:
