/root/repo/target/release/deps/thm_iv1_validation-cf13409f1c033e30.d: crates/bench/src/bin/thm_iv1_validation.rs

/root/repo/target/release/deps/thm_iv1_validation-cf13409f1c033e30: crates/bench/src/bin/thm_iv1_validation.rs

crates/bench/src/bin/thm_iv1_validation.rs:
