/root/repo/target/release/libpmsb_simcore.rlib: /root/repo/crates/simcore/src/event.rs /root/repo/crates/simcore/src/lib.rs /root/repo/crates/simcore/src/rng.rs /root/repo/crates/simcore/src/time.rs
