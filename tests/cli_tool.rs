//! End-to-end tests of the `pmsb-sim` binary (spawned as a subprocess).

use std::process::Command;

fn pmsb_sim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pmsb-sim"))
        .args(args)
        .output()
        .expect("spawn pmsb-sim");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = pmsb_sim(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("dumbbell"));
}

#[test]
fn profile_derives_paper_thresholds() {
    let (ok, stdout, _) = pmsb_sim(&[
        "profile",
        "--rtt-us",
        "85.2",
        "--weights",
        "1,1,1,1,1,1,1,1",
    ]);
    assert!(ok, "{stdout}");
    // The sum-of-bounds recipe lands on ~12 packets — the paper's choice.
    assert!(stdout.contains("port_threshold"), "{stdout}");
    assert!(stdout.contains("12.2 pkts"), "{stdout}");
    assert!(stdout.contains("pmsbe_rtt_threshold,102240 ns"), "{stdout}");
}

#[test]
fn dumbbell_runs_a_flow() {
    let (ok, stdout, stderr) = pmsb_sim(&[
        "dumbbell",
        "--senders",
        "2",
        "--marking",
        "pmsb:12",
        "--millis",
        "20",
        "--flow",
        "0>2:0:50K",
        "--flow",
        "1>2:1:50K",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("completed_flows,2"), "{stdout}");
    assert!(stdout.contains("fct_small"), "{stdout}");
}

#[test]
fn bad_arguments_fail_with_guidance() {
    let (ok, _, stderr) = pmsb_sim(&["dumbbell", "--marking", "pmsb"]);
    assert!(!ok);
    assert!(
        stderr.contains("pmsb:12"),
        "error should show an example: {stderr}"
    );

    let (ok, _, stderr) = pmsb_sim(&["dumbbell", "--millis", "10"]);
    assert!(!ok);
    assert!(stderr.contains("--flow"), "{stderr}");

    let (ok, _, stderr) = pmsb_sim(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn profile_rejects_thresholds_below_the_bound() {
    let (ok, _, stderr) = pmsb_sim(&[
        "profile",
        "--rtt-us",
        "85.2",
        "--weights",
        "1,1,1,1,1,1,1,1",
        "--lambda",
        "0.05",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("Theorem IV.1"),
        "must explain the violation: {stderr}"
    );
}
