//! Cross-crate integration tests of the full simulation stack.

use pmsb::MarkPoint;
use pmsb_metrics::fct::SizeClass;
use pmsb_netsim::experiment::{Experiment, FlowDesc, MarkingConfig, SchedulerConfig};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::traffic::TrafficSpec;

#[test]
fn leaf_spine_workload_is_deterministic() {
    let run = || {
        let spec = TrafficSpec::paper_large_scale(12, 0.4);
        let flows = spec.generate(40, &mut SimRng::seed_from(11));
        let mut e = Experiment::leaf_spine(2, 2, 6).marking(MarkingConfig::Pmsb {
            port_threshold_pkts: 12,
        });
        for f in &flows {
            e.add_flow(
                FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                    .starting_at(f.start_nanos),
            );
        }
        let end = flows.last().unwrap().start_nanos + 400_000_000;
        let res = e.run_until_nanos(end);
        let mut records: Vec<(u64, u64)> = res
            .fct
            .records()
            .iter()
            .map(|r| (r.flow_id, r.end_nanos))
            .collect();
        records.sort_unstable();
        (records, res.marks, res.drops)
    };
    assert_eq!(run(), run(), "identical seeds must replay identically");
}

#[test]
fn workload_flows_complete_on_fabric() {
    let spec = TrafficSpec::paper_large_scale(12, 0.3);
    let flows = spec.generate(30, &mut SimRng::seed_from(5));
    let mut e = Experiment::leaf_spine(2, 2, 6).marking(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    for f in &flows {
        e.add_flow(
            FlowDesc::bulk(f.src_host, f.dst_host, f.service, f.size_bytes)
                .starting_at(f.start_nanos),
        );
    }
    let end = flows.last().unwrap().start_nanos + 2_000_000_000;
    let res = e.run_until_nanos(end);
    assert_eq!(res.fct.len(), flows.len(), "every injected flow completes");
    // Small flows finish orders of magnitude faster than large ones.
    let small = res.fct.stats(SizeClass::Small).unwrap();
    if let Some(large) = res.fct.stats(SizeClass::Large) {
        assert!(small.mean * 20.0 < large.mean);
    }
}

#[test]
fn tiny_buffers_drop_and_flows_still_finish() {
    let mut e = Experiment::dumbbell(4, 2)
        .marking(MarkingConfig::None)
        .host_nic_marking(MarkingConfig::None)
        .buffer_bytes(20 * 1500); // 20-packet port buffer, no ECN
    for s in 0..4 {
        e.add_flow(FlowDesc::bulk(s, 4, s % 2, 1_000_000));
    }
    let res = e.run_for_millis(400);
    assert!(res.drops > 0, "slow start into a 20-pkt buffer must drop");
    assert_eq!(res.marks, 0, "ECN disabled");
    assert_eq!(res.fct.len(), 4, "loss recovery completes the flows");
}

#[test]
fn pmsbe_victim_flow_ignores_marks() {
    // Per-port marking with a PMSB(e) endpoint: the lone queue-0 flow is
    // marked because of queue 1's backlog but ignores (most of) it.
    let mut e = Experiment::dumbbell(5, 2)
        .marking(MarkingConfig::PerPort { threshold_pkts: 12 })
        .pmsbe_rtt_threshold_nanos(40_000);
    e.add_flow(FlowDesc::bulk(0, 5, 0, 4_000_000));
    for s in 1..5 {
        e.add_flow(FlowDesc::long_lived(s, 5, 1));
    }
    let res = e.run_for_millis(60);
    let stats = res.sender_stats[&0];
    assert!(stats.marks_seen > 0, "victim must receive marks");
    assert!(
        stats.marks_ignored * 2 > stats.marks_seen,
        "victim should ignore most marks: {stats:?}"
    );
    assert_eq!(res.fct.len(), 1, "the bulk flow completes");
}

#[test]
fn mq_ecn_only_meaningful_on_round_based_schedulers() {
    // MQ-ECN's dynamic threshold needs the scheduler's round time. On
    // DWRR (8 active queues) each queue's threshold shrinks to ~1/8 of
    // the standard 65 packets, keeping the buffer low; on WFQ there is no
    // round signal, MQ-ECN falls back to the full standard threshold per
    // queue, and the port buffer stabilizes several times higher.
    let run = |sched: SchedulerConfig| {
        let mut e = Experiment::dumbbell(8, 8)
            .scheduler(sched)
            .marking(MarkingConfig::MqEcn { standard_pkts: 65 })
            .host_nic_marking(MarkingConfig::None)
            .watch_bottleneck(50_000);
        for s in 0..8 {
            e.add_flow(FlowDesc::long_lived(s, 8, s));
        }
        let res = e.run_for_millis(40);
        let trace = &res.port_traces[&(0, 8)];
        let pts = trace.port_occupancy_pkts.points();
        // Time-weighted mean over the second half of the run.
        let tail: Vec<f64> = pts[pts.len() / 2..].iter().map(|(_, v)| *v).collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let dwrr_occ = run(SchedulerConfig::Dwrr {
        weights: vec![1; 8],
    });
    let wfq_occ = run(SchedulerConfig::Wfq {
        weights: vec![1; 8],
    });
    assert!(
        dwrr_occ * 2.0 < wfq_occ,
        "MQ-ECN on DWRR should keep the buffer far lower than on WFQ \
         (round-less fallback): dwrr {dwrr_occ:.1} pkts vs wfq {wfq_occ:.1} pkts"
    );
}

#[test]
fn ecn_outperforms_droptail_for_small_flow_latency() {
    // A sanity check of the whole premise (the classic DCTCP motivation):
    // mice sharing a queue with elephants complete much faster when the
    // switch marks ECN than under plain drop-tail, because the standing
    // queue they wait behind is ~K packets instead of a full buffer.
    let run = |marking: MarkingConfig| {
        let mut e = Experiment::dumbbell(3, 1)
            .marking(marking)
            .buffer_bytes(96 * 1500);
        e.add_flow(FlowDesc::long_lived(0, 3, 0));
        e.add_flow(FlowDesc::long_lived(1, 3, 0));
        for i in 0..10u64 {
            e.add_flow(FlowDesc::bulk(2, 3, 0, 30_000).starting_at(2_000_000 + i * 2_000_000));
        }
        let res = e.run_for_millis(60);
        res.fct.stats(SizeClass::Small).unwrap().p99
    };
    let droptail = run(MarkingConfig::None);
    let pmsb = run(MarkingConfig::Pmsb {
        port_threshold_pkts: 12,
    });
    assert!(
        pmsb * 2.0 < droptail,
        "PMSB small-flow p99 ({pmsb} ns) should be far below drop-tail ({droptail} ns)"
    );
}

#[test]
fn mark_point_is_honoured_per_packet() {
    // Dequeue marking and enqueue marking both produce marks; the run
    // with dequeue marking sees lower buffer peaks (early notification).
    let run = |point: MarkPoint| {
        let mut e = Experiment::dumbbell(4, 1)
            .marking(MarkingConfig::PerQueueStandard { threshold_pkts: 16 })
            .mark_point(point)
            .link_rate_gbps(1)
            .watch_bottleneck(10_000);
        for s in 0..4 {
            e.add_flow(FlowDesc::long_lived(s, 4, 0));
        }
        let res = e.run_for_millis(15);
        (
            res.marks,
            res.port_traces[&(0, 4)].port_occupancy_pkts.peak().unwrap(),
        )
    };
    let (enq_marks, enq_peak) = run(MarkPoint::Enqueue);
    let (deq_marks, deq_peak) = run(MarkPoint::Dequeue);
    assert!(enq_marks > 0 && deq_marks > 0);
    assert!(
        deq_peak <= enq_peak,
        "dequeue {deq_peak} vs enqueue {enq_peak}"
    );
}
