//! Integration of the pure library layers — schedulers + marking +
//! metrics + workload — without the packet simulator.

use pmsb::marking::{MarkingScheme, PerPort, Pmsb};
use pmsb::{PortSnapshot, PortView};
use pmsb_metrics::fct::{FctRecorder, FlowRecord, SizeClass};
use pmsb_metrics::Cdf;
use pmsb_sched::{Dwrr, MultiQueue, SchedItem};
use pmsb_simcore::rng::SimRng;
use pmsb_workload::{FlowSizeDist, PaperMix};

#[derive(Debug, Clone, Copy)]
struct Cell(u64);
impl SchedItem for Cell {
    fn len_bytes(&self) -> u64 {
        self.0
    }
}

/// Drives a `MultiQueue` + `Pmsb` marker by hand, the way a switch
/// dataplane would, and checks the selective-blindness invariant against
/// plain per-port marking at every step.
#[test]
fn pmsb_marks_are_a_subset_of_per_port_marks_in_a_live_queue() {
    let port_k = 12 * 1500;
    let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1], 1500)), u64::MAX);
    let mut pmsb = Pmsb::new(port_k, vec![1, 1]);
    let mut per_port = PerPort::new(port_k);
    let mut rng = SimRng::seed_from(3);
    let mut now = 0u64;
    let mut pmsb_marks = 0u32;
    let mut port_marks = 0u32;
    for step in 0..5_000 {
        // Skewed arrivals: queue 0 gets 4x the traffic of queue 1.
        let q = usize::from(rng.below(5) == 0);
        mq.enqueue(q, Cell(1500), now).unwrap();
        let view = PortSnapshot::builder(2)
            .queue_bytes(0, mq.queue_bytes(0))
            .queue_bytes(1, mq.queue_bytes(1))
            .build();
        let m1 = pmsb.should_mark(&view, q).is_mark();
        let m2 = per_port.should_mark(&view, q).is_mark();
        assert!(
            !m1 || m2,
            "PMSB marked where per-port did not (step {step})"
        );
        pmsb_marks += u32::from(m1);
        port_marks += u32::from(m2);
        // Serve one packet every other step so a backlog builds.
        if step % 2 == 0 {
            mq.dequeue(now);
        }
        now += 1_200;
    }
    assert!(port_marks > 0, "the scenario must congest the port");
    assert!(
        pmsb_marks < port_marks,
        "selective blindness must suppress some marks ({pmsb_marks} vs {port_marks})"
    );
}

#[test]
fn view_adapter_matches_queue_accounting() {
    let mut mq = MultiQueue::new(Box::new(Dwrr::new(vec![1, 1, 1], 1500)), u64::MAX);
    mq.enqueue(0, Cell(700), 0).unwrap();
    mq.enqueue(2, Cell(800), 0).unwrap();
    let view = PortSnapshot::builder(3)
        .queue_bytes(0, mq.queue_bytes(0))
        .queue_bytes(1, mq.queue_bytes(1))
        .queue_bytes(2, mq.queue_bytes(2))
        .build();
    assert_eq!(view.port_bytes(), mq.port_bytes());
    assert_eq!(view.queue_bytes(2), 800);
}

/// The workload generator and the metrics size classes agree on the
/// paper's 60/30/10 mix.
#[test]
fn workload_sizes_match_metric_classes() {
    let mix = PaperMix::new();
    let mut rng = SimRng::seed_from(17);
    let mut rec = FctRecorder::new();
    for i in 0..30_000 {
        let bytes = mix.sample(&mut rng);
        rec.record(FlowRecord {
            flow_id: i,
            bytes,
            start_nanos: 0,
            end_nanos: 1,
        });
    }
    let small = rec.stats(SizeClass::Small).unwrap().count as f64 / 30_000.0;
    let large = rec.stats(SizeClass::Large).unwrap().count as f64 / 30_000.0;
    assert!((small - 0.6).abs() < 0.02, "small fraction {small}");
    assert!((large - 0.1).abs() < 0.012, "large fraction {large}");
}

/// CDFs over workload samples behave like distribution functions.
#[test]
fn workload_cdf_roundtrip() {
    let mix = PaperMix::new();
    let mut rng = SimRng::seed_from(23);
    let samples: Vec<f64> = (0..5_000).map(|_| mix.sample(&mut rng) as f64).collect();
    let cdf = Cdf::from_samples(samples).unwrap();
    // 100 KB is the small/medium boundary: ~60% of samples lie below.
    let f = cdf.fraction_below(100_000.0);
    assert!((f - 0.6).abs() < 0.03, "fraction below 100 KB: {f}");
    assert!(
        cdf.quantile(0.99) > 10_000_000.0,
        "tail must be large flows"
    );
}

/// The Theorem IV.1 helpers are consistent with the analytical model at
/// the paper's operating point.
#[test]
fn analysis_consistency_at_paper_operating_point() {
    use pmsb::analysis::*;
    let bdp = bdp_segments(10_000_000_000, 85_200, 1500);
    let gamma_bdp = bdp / 8.0; // 8 equal queues
    let bound = theorem_iv1_min_threshold_segments(gamma_bdp);
    // The paper's choice: port threshold 12 pkts over 8 queues => filter
    // threshold 1.5 pkts per queue, above the ~1.27-pkt bound.
    assert!(bound < 1.5, "bound {bound} must admit the paper's config");
    // And the Q_min at the worst case is positive for k = 1.5.
    let n = worst_case_flow_count(gamma_bdp, 1.5);
    assert!(q_min(n, gamma_bdp, 1.5) > 0.0);
}
