//! Integration tests asserting the paper's qualitative phenomena using
//! the same experiment code as the figure binaries (quick settings).

use pmsb_bench::figures;

#[test]
fn per_port_marking_violates_fair_sharing_and_pmsb_restores_it() {
    // Fig. 3: the lone queue-1 flow is a victim under per-port K=16.
    let violated = figures::fig03(&mut String::new(), true);
    assert!(
        violated.queue_gbps[0] < 3.5,
        "queue 1 should be victimized: {:?}",
        violated.queue_gbps
    );
    assert!(
        violated.total_gbps > 9.0,
        "the link must still be fully used: {:.2}",
        violated.total_gbps
    );
    // Fig. 8: PMSB restores ~5/5.
    let fair = figures::fig08(&mut String::new(), true);
    assert!(
        (fair.queue_gbps[0] - 5.0).abs() < 0.7 && (fair.queue_gbps[1] - 5.0).abs() < 0.7,
        "PMSB must restore the 1:1 split: {:?}",
        fair.queue_gbps
    );
    assert!(fair.total_gbps > 9.0);
}

#[test]
fn raising_port_threshold_helps_until_flow_count_grows() {
    // Fig. 6: K=65 restores fairness at 1:8 ...
    let ok = figures::fig06(&mut String::new(), true);
    assert!(
        (ok.queue_gbps[0] - 5.0).abs() < 0.8,
        "K=65 should restore fairness at 1:8: {:?}",
        ok.queue_gbps
    );
    // Fig. 7: ... but is violated again at 1:40.
    let broken = figures::fig07(&mut String::new(), true);
    assert!(
        broken.queue_gbps[0] < 3.5,
        "K=65 must fail at 1:40: {:?}",
        broken.queue_gbps
    );
}

#[test]
fn dequeue_marking_delivers_congestion_information_early() {
    // Fig. 4: dequeue marking lowers the slow-start peak.
    let (enq, deq) = figures::fig04(&mut String::new(), true);
    assert!(
        deq < enq * 0.92,
        "dequeue peak {deq} should be well below enqueue peak {enq}"
    );
    // Fig. 5: TCN's sojourn marking cannot benefit — its peak stays at the
    // enqueue level.
    let tcn = figures::fig05(&mut String::new(), true);
    assert!(
        tcn > deq * 1.1,
        "TCN peak {tcn} should stay high (DCTCP dequeue peak {deq})"
    );
}

#[test]
fn pmsb_keeps_fair_sharing_under_heavy_traffic() {
    // Fig. 10: 1 vs 100 flows.
    let r = figures::fig10(&mut String::new(), true);
    assert!(
        (r.queue_gbps[0] - 5.0).abs() < 0.8,
        "PMSB must hold 5/5 at 1:100: {:?}",
        r.queue_gbps
    );
}

#[test]
fn pmsb_achieves_lowest_rtt_among_schemes() {
    // Fig. 9: PMSB < per-queue-standard in mean RTT; TCN and
    // per-queue-std are the high-latency schemes.
    let rows = figures::fig09(&mut String::new(), true);
    let get = |n: &str| {
        rows.iter()
            .find(|(name, _)| *name == n)
            .map(|(_, s)| s.mean)
            .unwrap()
    };
    assert!(
        get("pmsb") < get("per-queue-std") * 0.85,
        "pmsb {} vs per-queue-std {}",
        get("pmsb"),
        get("per-queue-std")
    );
    assert!(get("pmsb(e)") < get("per-queue-std"));
}

#[test]
fn generic_schedulers_are_preserved() {
    // Fig. 14: strict priority 5/3/2 under PMSB.
    let shares = figures::fig14(&mut String::new(), true);
    assert!((shares[0] - 5.1).abs() < 0.5, "q1 {shares:?}");
    assert!((shares[1] - 3.1).abs() < 0.5, "q2 {shares:?}");
    assert!((shares[2] - 1.8).abs() < 0.6, "q3 {shares:?}");
    // Fig. 15: WFQ solo 10 Gbps then 5/5.
    let (solo, q1, q2) = figures::fig15(&mut String::new(), true);
    assert!(solo > 9.0, "solo {solo}");
    assert!(
        (q1 - 5.0).abs() < 0.7 && (q2 - 5.0).abs() < 0.7,
        "{q1}/{q2}"
    );
}

#[test]
fn theorem_iv1_bound_predicts_throughput_recovery() {
    let rows = figures::thm_iv1(&mut String::new(), true);
    // Utilization is non-decreasing in the threshold and reaches ~full
    // above the bound.
    for w in rows.windows(2) {
        assert!(
            w[1].2 >= w[0].2 - 0.02,
            "utilization should grow with k: {rows:?}"
        );
    }
    let below = rows.first().unwrap().2;
    let above = rows.last().unwrap().2;
    assert!(
        above > 0.99,
        "well above the bound: full utilization, got {above}"
    );
    assert!(
        above - below > 0.02,
        "a threshold far below the bound must lose throughput ({below} vs {above})"
    );
}
